#include "runtime/session.hpp"

namespace hybrimoe::runtime {

namespace {

/// Seed offset separating warmup traces from evaluation traces.
constexpr std::uint64_t kWarmupSeedSalt = 0x5EEDFACEULL;

workload::TraceGenParams warmup_params(const workload::TraceGenParams& base) {
  workload::TraceGenParams p = base;
  p.gate_seed = base.effective_gate_seed();  // same model instance ...
  p.seed = base.seed ^ kWarmupSeedSalt;      // ... different token stream
  return p;
}

/// Stage adapters: one isolated request through the serving layer. A single
/// whole-prompt (or prompt-free decode) request composes every step from
/// exactly the shared stage trace, so these reproduce the pre-serving
/// run_prefill/run_decode numbers bit for bit.
StageMetrics serve_one_prefill(std::unique_ptr<OffloadEngine> engine,
                               const workload::PrefillTrace& trace) {
  std::vector<Request> requests(1);
  requests[0].spec.prompt_tokens = trace.prompt_tokens;
  requests[0].prefill_chunks.push_back(trace);
  ServeEngine serve(std::move(engine));
  return serve.run(std::move(requests)).steps;
}

StageMetrics serve_one_decode(std::unique_ptr<OffloadEngine> engine,
                              const workload::DecodeTrace& trace) {
  HYBRIMOE_REQUIRE(trace.num_steps() > 0, "decode trace is empty");
  std::vector<Request> requests(1);
  requests[0].spec.decode_tokens = trace.num_steps();
  requests[0].decode = trace;
  ServeEngine serve(std::move(engine));
  return serve.run(std::move(requests)).steps;
}

}  // namespace

ExperimentHarness::ExperimentHarness(ExperimentSpec spec)
    : spec_(std::move(spec)),
      costs_(spec_.topology.value_or(hw::Topology::from_machine(spec_.machine)),
             spec_.model),
      generator_(spec_.model, spec_.trace) {
  // Warmup statistics from an independent trace: same gates, different
  // token process — no oracle knowledge of the evaluation trace.
  workload::TraceGenerator warmup_gen(spec_.model, warmup_params(spec_.trace));
  const auto warmup_trace = warmup_gen.generate_decode(spec_.warmup_steps);
  warmup_frequencies_ = workload::activation_frequencies(warmup_trace, spec_.model);
}

const workload::PrefillTrace& ExperimentHarness::prefill_trace(std::size_t tokens) {
  auto it = prefill_traces_.find(tokens);
  if (it == prefill_traces_.end()) {
    // A fresh conversation per prompt length, deterministic in (seed, length).
    generator_.reset(spec_.trace.seed + tokens * 2654435761ULL);
    it = prefill_traces_.emplace(tokens, generator_.generate_prefill(tokens)).first;
  }
  return it->second;
}

const workload::DecodeTrace& ExperimentHarness::decode_trace(std::size_t steps) {
  auto it = decode_traces_.find(steps);
  if (it == decode_traces_.end()) {
    generator_.reset(spec_.trace.seed + steps * 0x9E3779B1ULL + 1);
    it = decode_traces_.emplace(steps, generator_.generate_decode(steps)).first;
  }
  return it->second;
}

std::unique_ptr<OffloadEngine> ExperimentHarness::build(Framework framework) const {
  EngineBuildInfo info;
  info.cache_ratio = spec_.cache_ratio;
  info.warmup_frequencies = warmup_frequencies_;
  info.seed = spec_.trace.seed;
  info.execution_mode = spec_.execution_mode;
  info.executor = spec_.executor;
  return make_engine(framework, costs_, info);
}

std::unique_ptr<OffloadEngine> ExperimentHarness::build(
    const core::HybriMoeConfig& config) const {
  return build(ablation_spec(config));
}

std::unique_ptr<OffloadEngine> ExperimentHarness::build(const StackSpec& stack) const {
  EngineBuildInfo info;
  info.cache_ratio = spec_.cache_ratio;
  info.warmup_frequencies = warmup_frequencies_;
  info.seed = spec_.trace.seed;
  info.execution_mode = spec_.execution_mode;
  info.executor = spec_.executor;
  return make_engine(stack, costs_, info);
}

void ExperimentHarness::set_execution(exec::ExecutionMode mode,
                                      std::shared_ptr<exec::HybridExecutor> executor) {
  HYBRIMOE_REQUIRE(mode == exec::ExecutionMode::Simulated || executor != nullptr,
                   "threaded execution requires an executor");
  spec_.execution_mode = mode;
  spec_.executor = std::move(executor);
}

StageMetrics ExperimentHarness::run_prefill(Framework framework, std::size_t tokens) {
  const auto& trace = prefill_trace(tokens);
  return serve_one_prefill(build(framework), trace);
}

StageMetrics ExperimentHarness::run_decode(Framework framework, std::size_t steps) {
  const auto& trace = decode_trace(steps);
  return serve_one_decode(build(framework), trace);
}

StageMetrics ExperimentHarness::run_prefill(const core::HybriMoeConfig& config,
                                            std::size_t tokens) {
  const auto& trace = prefill_trace(tokens);
  return serve_one_prefill(build(config), trace);
}

StageMetrics ExperimentHarness::run_decode(const core::HybriMoeConfig& config,
                                           std::size_t steps) {
  const auto& trace = decode_trace(steps);
  return serve_one_decode(build(config), trace);
}

StageMetrics ExperimentHarness::run_prefill(const StackSpec& stack, std::size_t tokens) {
  const auto& trace = prefill_trace(tokens);
  return serve_one_prefill(build(stack), trace);
}

StageMetrics ExperimentHarness::run_decode(const StackSpec& stack, std::size_t steps) {
  const auto& trace = decode_trace(steps);
  return serve_one_decode(build(stack), trace);
}

std::vector<Request> ExperimentHarness::materialize(
    std::span<const workload::RequestSpec> requests, std::size_t max_prefill_chunk) {
  return materialize_requests(generator_, requests, max_prefill_chunk);
}

ServeMetrics ExperimentHarness::serve(Framework framework,
                                      std::span<const workload::RequestSpec> requests,
                                      const ServeOptions& options) {
  return serve(framework, materialize(requests, options.max_prefill_chunk), options);
}

ServeMetrics ExperimentHarness::serve(const core::HybriMoeConfig& config,
                                      std::span<const workload::RequestSpec> requests,
                                      const ServeOptions& options) {
  ServeEngine engine(build(config));
  return engine.run(materialize(requests, options.max_prefill_chunk), options);
}

ServeMetrics ExperimentHarness::serve(const StackSpec& stack,
                                      std::span<const workload::RequestSpec> requests,
                                      const ServeOptions& options) {
  return serve(stack, materialize(requests, options.max_prefill_chunk), options);
}

ServeOptions ExperimentHarness::resolved_serve_options(const StackSpec& stack,
                                                       ServeOptions options) const {
  if (stack.kv.has_value()) {
    options.kv = *stack.kv;
    if (options.kv.enabled() && options.kv.bytes_per_token <= 0.0)
      options.kv.bytes_per_token = serve_sim::model_kv_bytes_per_token(spec_.model);
  }
  return options;
}

ServeMetrics ExperimentHarness::serve_stream(
    Framework framework, std::span<const workload::RequestSpec> requests,
    const ServeOptions& options) {
  ServeEngine engine(build(framework));
  return engine.serve_stream(generator_, requests, options);
}

ServeMetrics ExperimentHarness::serve_stream(
    const StackSpec& stack, std::span<const workload::RequestSpec> requests,
    const ServeOptions& options) {
  ServeEngine engine(build(stack));
  return engine.serve_stream(generator_, requests,
                             resolved_serve_options(stack, options));
}

ServeMetrics ExperimentHarness::serve(Framework framework,
                                      std::vector<Request> requests,
                                      const ServeOptions& options) {
  ServeEngine engine(build(framework));
  return engine.run(std::move(requests), options);
}

ServeMetrics ExperimentHarness::serve(const StackSpec& stack,
                                      std::vector<Request> requests,
                                      const ServeOptions& options) {
  ServeEngine engine(build(stack));
  return engine.run(std::move(requests), resolved_serve_options(stack, options));
}

}  // namespace hybrimoe::runtime
