#include "runtime/serve_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::runtime {

void ServeOptions::validate() const {
  HYBRIMOE_REQUIRE(max_batch > 0, "max_batch must be positive");
}

namespace {

/// Decorrelate per-request token streams from the stream seed (splitmix64).
std::uint64_t request_trace_seed(std::uint64_t stream_seed, std::uint64_t id) {
  std::uint64_t z = stream_seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<Request> materialize_requests(workload::TraceGenerator& generator,
                                          std::span<const workload::RequestSpec> specs,
                                          std::size_t max_prefill_chunk) {
  std::vector<Request> requests;
  requests.reserve(specs.size());
  for (const auto& spec : specs) {
    HYBRIMOE_REQUIRE(spec.prompt_tokens + spec.decode_tokens > 0,
                     "request has no tokens");
    Request request;
    request.spec = spec;
    generator.reset(request_trace_seed(generator.params().seed, spec.id));
    std::size_t remaining = spec.prompt_tokens;
    while (remaining > 0) {
      const std::size_t chunk =
          max_prefill_chunk == 0 ? remaining : std::min(max_prefill_chunk, remaining);
      request.prefill_chunks.push_back(generator.generate_prefill(chunk));
      remaining -= chunk;
    }
    if (spec.decode_tokens > 0)
      request.decode = generator.generate_decode(spec.decode_tokens);
    requests.push_back(std::move(request));
  }
  return requests;
}

ServeEngine::ServeEngine(std::unique_ptr<OffloadEngine> engine)
    : engine_(std::move(engine)) {
  HYBRIMOE_REQUIRE(engine_ != nullptr, "serve engine requires an offload engine");
}

ServeMetrics ServeEngine::run(std::vector<Request> requests,
                              const ServeOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!requests.empty(), "serving an empty request stream");
  std::stable_sort(requests.begin(), requests.end(), [](const Request& a,
                                                        const Request& b) {
    return a.spec.arrival_time < b.spec.arrival_time;
  });
  for (const Request& r : requests) {
    HYBRIMOE_REQUIRE(r.state == RequestState::Queued && r.next_chunk == 0 &&
                         r.next_step == 0,
                     "requests must be freshly materialised");
    HYBRIMOE_REQUIRE(r.spec.arrival_time >= 0.0, "arrival time must be non-negative");
    std::size_t chunk_tokens = 0;
    for (const auto& chunk : r.prefill_chunks) {
      HYBRIMOE_REQUIRE(options.max_prefill_chunk == 0 ||
                           chunk.prompt_tokens <= options.max_prefill_chunk,
                       "prefill chunk exceeds max_prefill_chunk");
      chunk_tokens += chunk.prompt_tokens;
    }
    HYBRIMOE_REQUIRE(chunk_tokens == r.spec.prompt_tokens,
                     "prefill chunks do not cover the prompt");
    HYBRIMOE_REQUIRE(r.decode.num_steps() == r.spec.decode_tokens,
                     "decode trace does not match the decode budget");
    HYBRIMOE_REQUIRE(r.spec.prompt_tokens + r.spec.decode_tokens > 0,
                     "request has no tokens");
  }

  ServeMetrics metrics;
  metrics.requests.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    RequestMetrics& m = metrics.requests[i];
    m.id = requests[i].spec.id;
    m.arrival = requests[i].spec.arrival_time;
    m.prompt_tokens = requests[i].spec.prompt_tokens;
  }
  StageMetrics& steps = metrics.steps;
  engine_->cache().reset_stats();

  double clock = 0.0;
  std::size_t next_arrival = 0;
  std::size_t finished = 0;
  bool any_decode = false;
  std::vector<Request*> active;  // admission order == decode order
  std::vector<const workload::ForwardTrace*> parts;
  std::vector<Request*> decoding;
  const auto index_of = [&](const Request* r) {
    return static_cast<std::size_t>(r - requests.data());
  };

  while (finished < requests.size()) {
    // FIFO admission while the batch has capacity.
    while (next_arrival < requests.size() &&
           requests[next_arrival].spec.arrival_time <= clock &&
           active.size() < options.max_batch) {
      Request& r = requests[next_arrival++];
      r.admit_time = clock;
      r.state = r.prefill_chunks.empty() ? RequestState::Decode : RequestState::Prefill;
      metrics.requests[index_of(&r)].admit = clock;
      active.push_back(&r);
    }
    if (active.empty()) {
      // Nothing in flight: idle until the next arrival.
      HYBRIMOE_ASSERT(next_arrival < requests.size(), "serve loop stalled");
      clock = std::max(clock, requests[next_arrival].spec.arrival_time);
      continue;
    }

    // Compose the step: at most one prefill chunk (earliest-admitted request
    // still prefilling) plus every active decode.
    parts.clear();
    decoding.clear();
    Request* prefilling = nullptr;
    std::size_t prefill_tokens = 0;
    std::size_t decode_tokens = 0;
    for (Request* r : active) {
      if (r->state == RequestState::Prefill) {
        if (prefilling != nullptr) continue;  // one chunk per step
        prefilling = r;
        const workload::ForwardTrace& chunk = r->prefill_chunks[r->next_chunk].forward;
        parts.push_back(&chunk);
        prefill_tokens += chunk.tokens;
      } else {
        HYBRIMOE_ASSERT(r->state == RequestState::Decode, "active request not runnable");
        const workload::ForwardTrace& step = r->decode.steps[r->next_step];
        parts.push_back(&step);
        decode_tokens += step.tokens;
        decoding.push_back(r);
      }
    }
    HYBRIMOE_ASSERT(!parts.empty(), "composed an empty step");
    const sched::Stage stage = sched::dominant_stage(prefill_tokens, decode_tokens);
    if (!decoding.empty()) any_decode = true;

    double latency;
    if (parts.size() == 1) {
      latency = engine_->run_step(*parts.front(), stage, steps);
    } else {
      const workload::ForwardTrace merged = workload::merge_forward_traces(parts);
      latency = engine_->run_step(merged, stage, steps);
    }
    steps.per_forward.push_back(latency);
    steps.total_latency += latency;
    steps.tokens += prefill_tokens + decode_tokens;
    clock += latency;

    // Lifecycle bookkeeping at the step's completion instant.
    if (prefilling != nullptr) {
      ++prefilling->next_chunk;
      if (prefilling->next_chunk == prefilling->prefill_chunks.size()) {
        // Prompt fully processed: the first output token is ready.
        RequestMetrics& m = metrics.requests[index_of(prefilling)];
        prefilling->first_token_time = clock;
        prefilling->last_token_time = clock;
        m.first_token = clock;
        ++m.generated_tokens;
        if (prefilling->decode.num_steps() > 0) {
          prefilling->state = RequestState::Decode;
        } else {
          prefilling->state = RequestState::Finished;
          prefilling->finish_time = clock;
          m.finish = clock;
          ++finished;
        }
      }
    }
    for (Request* r : decoding) {
      RequestMetrics& m = metrics.requests[index_of(r)];
      if (r->prefill_chunks.empty() && r->next_step == 0) {
        // Promptless session: its first decode token is its first token.
        r->first_token_time = clock;
        m.first_token = clock;
      } else {
        m.tbt.push_back(clock - r->last_token_time);
      }
      r->last_token_time = clock;
      ++m.generated_tokens;
      ++r->next_step;
      if (r->next_step == r->decode.num_steps()) {
        r->state = RequestState::Finished;
        r->finish_time = clock;
        m.finish = clock;
        ++finished;
      }
    }
    std::erase_if(active,
                  [](const Request* r) { return r->state == RequestState::Finished; });
  }

  metrics.makespan = clock;
  steps.stage = any_decode ? sched::Stage::Decode : sched::Stage::Prefill;
  // Merge the cache's own counters with the transient-buffer hits run_step
  // accumulated, exactly as run_prefill/run_decode do.
  cache::CacheStats stats = engine_->cache().stats();
  stats.hits += steps.cache.hits;
  steps.cache = stats;

  // Finished-request accounting: every request ran to completion with
  // exactly its budgeted tokens.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    HYBRIMOE_ASSERT(r.state == RequestState::Finished, "unfinished request at exit");
    const std::size_t expected =
        (r.spec.prompt_tokens > 0 ? 1 : 0) + r.spec.decode_tokens;
    HYBRIMOE_ASSERT(metrics.requests[i].generated_tokens == expected,
                    "request token accounting mismatch");
  }
  return metrics;
}

}  // namespace hybrimoe::runtime
