#include "runtime/serve_engine.hpp"

#include <algorithm>

#include "serve_sim/sim_core.hpp"
#include "serve_sim/trace_source.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

void TierPolicy::validate() const {
  HYBRIMOE_REQUIRE(tbt_slo >= 0.0, "tier 'tbt_slo' must be non-negative");
  HYBRIMOE_REQUIRE(ttft_deadline >= 0.0, "tier 'ttft_deadline' must be non-negative");
  HYBRIMOE_REQUIRE(!queue_capacity.has_value() || *queue_capacity >= 1,
                   "a zero-capacity tier queue admits nothing — use a "
                   "capacity >= 1 or leave the tier unbounded");
}

void ServeOptions::validate() const {
  HYBRIMOE_REQUIRE(max_batch > 0, "max_batch must be positive");
  HYBRIMOE_REQUIRE(max_consecutive_preemptions >= 1,
                   "max_consecutive_preemptions must be >= 1");
  for (const TierPolicy& tier : tiers) tier.validate();
  kv.validate();
  HYBRIMOE_REQUIRE(!kv.enabled() || kv.bytes_per_token > 0.0,
                   "KV accounting needs a resolved 'bytes_per_token' (derive "
                   "it from the model with serve_sim::model_kv_bytes_per_token)");
}

namespace {

/// The (arrival, id) order every serving entry point normalises to — the
/// tie-break rule documented in request.hpp.
void sort_by_arrival(std::vector<Request>& requests) {
  std::stable_sort(requests.begin(), requests.end(), [](const Request& a,
                                                        const Request& b) {
    if (a.spec.arrival_time != b.spec.arrival_time)
      return a.spec.arrival_time < b.spec.arrival_time;
    return a.spec.id < b.spec.id;
  });
}

}  // namespace

std::vector<Request> materialize_requests(workload::TraceGenerator& generator,
                                          std::span<const workload::RequestSpec> specs,
                                          std::size_t max_prefill_chunk) {
  std::vector<Request> requests;
  requests.reserve(specs.size());
  for (const auto& spec : specs) {
    Request request;
    request.spec = spec;
    serve_sim::materialize_request(generator, request, max_prefill_chunk);
    requests.push_back(std::move(request));
  }
  return requests;
}

ServeEngine::ServeEngine(std::unique_ptr<OffloadEngine> engine)
    : engine_(std::move(engine)) {
  HYBRIMOE_REQUIRE(engine_ != nullptr, "serve engine requires an offload engine");
}

ServeMetrics ServeEngine::run(std::vector<Request> requests,
                              const ServeOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!requests.empty(), "serving an empty request stream");
  sort_by_arrival(requests);
  for (const Request& r : requests) {
    HYBRIMOE_REQUIRE(r.state == RequestState::Queued && r.next_chunk == 0 &&
                         r.next_step == 0,
                     "requests must be freshly materialised");
    HYBRIMOE_REQUIRE(r.spec.arrival_time >= 0.0, "arrival time must be non-negative");
    std::size_t chunk_tokens = 0;
    for (const auto& chunk : r.prefill_chunks) {
      HYBRIMOE_REQUIRE(options.max_prefill_chunk == 0 ||
                           chunk.prompt_tokens <= options.max_prefill_chunk,
                       "prefill chunk exceeds max_prefill_chunk");
      chunk_tokens += chunk.prompt_tokens;
    }
    HYBRIMOE_REQUIRE(chunk_tokens == r.spec.prompt_tokens,
                     "prefill chunks do not cover the prompt");
    HYBRIMOE_REQUIRE(r.decode.num_steps() == r.spec.decode_tokens,
                     "decode trace does not match the decode budget");
    HYBRIMOE_REQUIRE(r.spec.prompt_tokens + r.spec.decode_tokens > 0,
                     "request has no tokens");
  }
  serve_sim::PrematerializedSource source;
  serve_sim::SimCore core(*engine_, options, source);
  return core.run(requests);
}

ServeMetrics ServeEngine::serve_stream(workload::TraceGenerator& generator,
                                       std::span<const workload::RequestSpec> specs,
                                       const ServeOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!specs.empty(), "serving an empty request stream");
  std::vector<Request> requests;
  requests.reserve(specs.size());
  for (const auto& spec : specs) {
    HYBRIMOE_REQUIRE(spec.prompt_tokens + spec.decode_tokens > 0,
                     "request has no tokens");
    HYBRIMOE_REQUIRE(spec.arrival_time >= 0.0, "arrival time must be non-negative");
    Request request;
    request.spec = spec;
    requests.push_back(std::move(request));
  }
  sort_by_arrival(requests);
  serve_sim::LazyTraceSource source(generator, options.max_prefill_chunk);
  serve_sim::SimCore core(*engine_, options, source);
  return core.run(requests);
}

}  // namespace hybrimoe::runtime
