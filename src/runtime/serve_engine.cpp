#include "runtime/serve_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::runtime {

void TierPolicy::validate() const {
  HYBRIMOE_REQUIRE(tbt_slo >= 0.0, "tier 'tbt_slo' must be non-negative");
  HYBRIMOE_REQUIRE(ttft_deadline >= 0.0, "tier 'ttft_deadline' must be non-negative");
  HYBRIMOE_REQUIRE(!queue_capacity.has_value() || *queue_capacity >= 1,
                   "a zero-capacity tier queue admits nothing — use a "
                   "capacity >= 1 or leave the tier unbounded");
}

void ServeOptions::validate() const {
  HYBRIMOE_REQUIRE(max_batch > 0, "max_batch must be positive");
  HYBRIMOE_REQUIRE(max_consecutive_preemptions >= 1,
                   "max_consecutive_preemptions must be >= 1");
  for (const TierPolicy& tier : tiers) tier.validate();
}

namespace {

/// Decorrelate per-request token streams from the stream seed (splitmix64).
std::uint64_t request_trace_seed(std::uint64_t stream_seed, std::uint64_t id) {
  std::uint64_t z = stream_seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<Request> materialize_requests(workload::TraceGenerator& generator,
                                          std::span<const workload::RequestSpec> specs,
                                          std::size_t max_prefill_chunk) {
  std::vector<Request> requests;
  requests.reserve(specs.size());
  for (const auto& spec : specs) {
    HYBRIMOE_REQUIRE(spec.prompt_tokens + spec.decode_tokens > 0,
                     "request has no tokens");
    Request request;
    request.spec = spec;
    generator.reset(request_trace_seed(generator.params().seed, spec.id));
    std::size_t remaining = spec.prompt_tokens;
    while (remaining > 0) {
      const std::size_t chunk =
          max_prefill_chunk == 0 ? remaining : std::min(max_prefill_chunk, remaining);
      request.prefill_chunks.push_back(generator.generate_prefill(chunk));
      remaining -= chunk;
    }
    if (spec.decode_tokens > 0)
      request.decode = generator.generate_decode(spec.decode_tokens);
    requests.push_back(std::move(request));
  }
  return requests;
}

ServeEngine::ServeEngine(std::unique_ptr<OffloadEngine> engine)
    : engine_(std::move(engine)) {
  HYBRIMOE_REQUIRE(engine_ != nullptr, "serve engine requires an offload engine");
}

ServeMetrics ServeEngine::run(std::vector<Request> requests,
                              const ServeOptions& options) {
  options.validate();
  HYBRIMOE_REQUIRE(!requests.empty(), "serving an empty request stream");
  // (arrival, id) order — the tie-break rule documented in request.hpp.
  std::stable_sort(requests.begin(), requests.end(), [](const Request& a,
                                                        const Request& b) {
    if (a.spec.arrival_time != b.spec.arrival_time)
      return a.spec.arrival_time < b.spec.arrival_time;
    return a.spec.id < b.spec.id;
  });
  for (const Request& r : requests) {
    HYBRIMOE_REQUIRE(r.state == RequestState::Queued && r.next_chunk == 0 &&
                         r.next_step == 0,
                     "requests must be freshly materialised");
    HYBRIMOE_REQUIRE(r.spec.arrival_time >= 0.0, "arrival time must be non-negative");
    std::size_t chunk_tokens = 0;
    for (const auto& chunk : r.prefill_chunks) {
      HYBRIMOE_REQUIRE(options.max_prefill_chunk == 0 ||
                           chunk.prompt_tokens <= options.max_prefill_chunk,
                       "prefill chunk exceeds max_prefill_chunk");
      chunk_tokens += chunk.prompt_tokens;
    }
    HYBRIMOE_REQUIRE(chunk_tokens == r.spec.prompt_tokens,
                     "prefill chunks do not cover the prompt");
    HYBRIMOE_REQUIRE(r.decode.num_steps() == r.spec.decode_tokens,
                     "decode trace does not match the decode budget");
    HYBRIMOE_REQUIRE(r.spec.prompt_tokens + r.spec.decode_tokens > 0,
                     "request has no tokens");
  }

  ServeMetrics metrics;
  metrics.requests.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    RequestMetrics& m = metrics.requests[i];
    m.id = requests[i].spec.id;
    m.priority = requests[i].spec.priority;
    m.arrival = requests[i].spec.arrival_time;
    m.prompt_tokens = requests[i].spec.prompt_tokens;
  }
  StageMetrics& steps = metrics.steps;
  engine_->cache().reset_stats();

  double clock = 0.0;
  std::size_t next_arrival = 0;
  std::size_t terminal = 0;  // finished + rejected
  bool any_decode = false;
  std::vector<Request*> waiting;  // surfaced, unadmitted; (arrival, id) order
  std::vector<Request*> active;   // admission order == decode order
  std::vector<const workload::ForwardTrace*> parts;
  std::vector<Request*> decoding;
  // Running step-latency estimates for the preemption decision: the latest
  // observed latency of a step with / without a prefill chunk. Negative
  // until observed — no preemption before both regimes have been seen.
  double est_prefill = -1.0;
  double est_decode = -1.0;
  const auto index_of = [&](const Request* r) {
    return static_cast<std::size_t>(r - requests.data());
  };
  const auto tier_of = [&](const Request* r) -> const TierPolicy& {
    return options.tiers[workload::priority_index(r->spec.priority)];
  };
  const auto reject = [&](Request& r) {
    r.state = RequestState::Rejected;
    metrics.requests[index_of(&r)].rejected = true;
    ++terminal;
  };

  while (terminal < requests.size()) {
    // Surface arrivals. A request whose total token budget exceeds the
    // context window is rejected outright — it could never be scheduled.
    while (next_arrival < requests.size() &&
           requests[next_arrival].spec.arrival_time <= clock) {
      Request& r = requests[next_arrival++];
      if (options.max_context_tokens > 0 &&
          r.spec.prompt_tokens + r.spec.decode_tokens > options.max_context_tokens) {
        reject(r);
        continue;
      }
      waiting.push_back(&r);
    }

    // Deadline-aware rejection: a request still waiting past its tier's
    // TTFT deadline will miss it no matter what — turn it away now.
    std::erase_if(waiting, [&](Request* r) {
      const TierPolicy& tier = tier_of(r);
      if (tier.ttft_deadline <= 0.0 ||
          clock <= r->spec.arrival_time + tier.ttft_deadline)
        return false;
      reject(*r);
      return true;
    });

    // Tier queue pressure: drop the newest overflow of any bounded tier.
    for (std::size_t t = 0; t < options.tiers.size(); ++t) {
      if (!options.tiers[t].queue_capacity.has_value()) continue;
      const std::size_t cap = *options.tiers[t].queue_capacity;
      std::size_t count = 0;
      for (const Request* r : waiting)
        count += workload::priority_index(r->spec.priority) == t ? 1 : 0;
      // waiting is (arrival, id)-ordered, so reverse iteration drops the
      // latest-arrived first.
      for (std::size_t i = waiting.size(); count > cap && i-- > 0;) {
        if (workload::priority_index(waiting[i]->spec.priority) != t) continue;
        reject(*waiting[i]);
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));
        --count;
      }
    }

    // Admission while the batch has capacity: FIFO by default; with
    // priority_admission the highest tier wins (FIFO within a tier — the
    // first max-tier element of the ordered waiting queue).
    while (!waiting.empty() && active.size() < options.max_batch) {
      std::size_t pick = 0;
      if (options.priority_admission) {
        for (std::size_t i = 1; i < waiting.size(); ++i)
          if (waiting[i]->spec.priority > waiting[pick]->spec.priority) pick = i;
      }
      Request& r = *waiting[pick];
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pick));
      r.admit_time = clock;
      r.state = r.prefill_chunks.empty() ? RequestState::Decode : RequestState::Prefill;
      metrics.requests[index_of(&r)].admit = clock;
      active.push_back(&r);
    }
    if (active.empty()) {
      if (terminal == requests.size()) break;  // everything rejected
      // Nothing in flight: idle until the next arrival.
      HYBRIMOE_ASSERT(next_arrival < requests.size(), "serve loop stalled");
      clock = std::max(clock, requests[next_arrival].spec.arrival_time);
      continue;
    }

    const std::size_t step_index = steps.per_forward.size();
    if (options.hook != nullptr)
      options.hook->before_step(step_index, clock, *engine_);

    // The prefill candidate: earliest-admitted request still prefilling
    // (paused or not). With preemption enabled, defer its chunk when running
    // it would push a higher-tier active decode past its tier's TBT SLO —
    // unless the candidate already sat out max_consecutive_preemptions
    // steps (the no-starvation valve).
    Request* candidate = nullptr;
    for (Request* r : active) {
      if (r->state == RequestState::Prefill || r->state == RequestState::Preempted) {
        candidate = r;
        break;
      }
    }
    bool defer = false;
    if (options.preemption && candidate != nullptr && est_prefill > 0.0 &&
        est_decode > 0.0 && est_decode < est_prefill &&
        candidate->preempt_streak < options.max_consecutive_preemptions) {
      for (const Request* d : active) {
        if (d->state != RequestState::Decode) continue;
        if (!(d->spec.priority > candidate->spec.priority)) continue;
        const TierPolicy& tier = tier_of(d);
        if (tier.tbt_slo <= 0.0) continue;
        // A decode that has not emitted yet has no inter-token gap to protect.
        if (d->prefill_chunks.empty() && d->next_step == 0) continue;
        if ((clock - d->last_token_time) + est_prefill > tier.tbt_slo) {
          defer = true;
          break;
        }
      }
    }
    if (candidate != nullptr) {
      if (defer) {
        if (candidate->state == RequestState::Prefill) candidate->preempt(clock);
        ++candidate->preempt_streak;
        metrics.requests[index_of(candidate)].preemptions = candidate->preemptions;
      } else if (candidate->state == RequestState::Preempted) {
        candidate->resume(clock);
      }
    }

    // Compose the step: the candidate's chunk (unless deferred) plus every
    // active decode, in admission order — merge order is float-sensitive,
    // so parts must appear exactly as the batch iterates.
    parts.clear();
    decoding.clear();
    Request* prefilling = nullptr;
    std::size_t prefill_tokens = 0;
    std::size_t decode_tokens = 0;
    for (Request* r : active) {
      if (r->state == RequestState::Prefill) {
        if (r != candidate || defer || prefilling != nullptr) continue;
        prefilling = r;
        const workload::ForwardTrace& chunk = r->prefill_chunks[r->next_chunk].forward;
        parts.push_back(&chunk);
        prefill_tokens += chunk.tokens;
      } else if (r->state == RequestState::Decode) {
        const workload::ForwardTrace& step = r->decode.steps[r->next_step];
        parts.push_back(&step);
        decode_tokens += step.tokens;
        decoding.push_back(r);
      }
      // Preempted requests (and prefills behind the candidate) sit the
      // step out.
    }
    HYBRIMOE_ASSERT(!parts.empty(), "composed an empty step");
    const std::size_t batch_size = active.size();
    const sched::Stage stage = sched::dominant_stage(prefill_tokens, decode_tokens);
    if (!decoding.empty()) any_decode = true;

    const double start_clock = clock;
    double latency;
    if (options.hook != nullptr) {
      // The transform hook needs a mutable copy even for single-part steps.
      workload::ForwardTrace merged = parts.size() == 1
                                          ? *parts.front()
                                          : workload::merge_forward_traces(parts);
      options.hook->transform_step(step_index, merged);
      latency = engine_->run_step(merged, stage, steps);
    } else if (parts.size() == 1) {
      latency = engine_->run_step(*parts.front(), stage, steps);
    } else {
      const workload::ForwardTrace merged = workload::merge_forward_traces(parts);
      latency = engine_->run_step(merged, stage, steps);
    }
    steps.per_forward.push_back(latency);
    steps.total_latency += latency;
    steps.tokens += prefill_tokens + decode_tokens;
    clock += latency;
    if (prefilling != nullptr) {
      est_prefill = latency;
    } else {
      est_decode = latency;
    }

    // Lifecycle bookkeeping at the step's completion instant.
    if (prefilling != nullptr) {
      ++prefilling->next_chunk;
      if (prefilling->next_chunk == prefilling->prefill_chunks.size()) {
        // Prompt fully processed: the first output token is ready.
        RequestMetrics& m = metrics.requests[index_of(prefilling)];
        prefilling->first_token_time = clock;
        prefilling->last_token_time = clock;
        m.first_token = clock;
        ++m.generated_tokens;
        if (prefilling->decode.num_steps() > 0) {
          prefilling->state = RequestState::Decode;
        } else {
          prefilling->state = RequestState::Finished;
          prefilling->finish_time = clock;
          m.finish = clock;
          ++terminal;
        }
      }
    }
    for (Request* r : decoding) {
      RequestMetrics& m = metrics.requests[index_of(r)];
      if (r->prefill_chunks.empty() && r->next_step == 0) {
        // Promptless session: its first decode token is its first token.
        r->first_token_time = clock;
        m.first_token = clock;
      } else {
        m.tbt.push_back(clock - r->last_token_time);
      }
      r->last_token_time = clock;
      ++m.generated_tokens;
      ++r->next_step;
      if (r->next_step == r->decode.num_steps()) {
        r->state = RequestState::Finished;
        r->finish_time = clock;
        m.finish = clock;
        ++terminal;
      }
    }
    std::erase_if(active,
                  [](const Request* r) { return r->state == RequestState::Finished; });

    if (options.hook != nullptr) {
      StepInfo info;
      info.index = step_index;
      info.start_clock = start_clock;
      info.end_clock = clock;
      info.latency = latency;
      info.stage = stage;
      info.prefill_tokens = prefill_tokens;
      info.decode_tokens = decode_tokens;
      info.active_requests = batch_size;
      options.hook->after_step(info, steps);
    }
  }

  metrics.makespan = clock;
  steps.stage = any_decode ? sched::Stage::Decode : sched::Stage::Prefill;
  // Merge the cache's own counters with the transient-buffer hits run_step
  // accumulated, exactly as run_prefill/run_decode do.
  cache::CacheStats stats = engine_->cache().stats();
  stats.hits += steps.cache.hits;
  steps.cache = stats;

  // Terminal accounting: every request either ran to completion with
  // exactly its budgeted tokens, or was rejected and emitted none.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    if (r.state == RequestState::Rejected) {
      HYBRIMOE_ASSERT(metrics.requests[i].generated_tokens == 0,
                      "rejected request emitted tokens");
      continue;
    }
    HYBRIMOE_ASSERT(r.state == RequestState::Finished, "unfinished request at exit");
    const std::size_t expected =
        (r.spec.prompt_tokens > 0 ? 1 : 0) + r.spec.decode_tokens;
    HYBRIMOE_ASSERT(metrics.requests[i].generated_tokens == expected,
                    "request token accounting mismatch");
    metrics.requests[i].preemptions = r.preemptions;
  }
  return metrics;
}

}  // namespace hybrimoe::runtime
