#include "runtime/frameworks.hpp"

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"
#include "core/warmup.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

namespace {

/// Per-layer dispatch overheads (§V): Python-orchestrated frameworks pay a
/// synchronisation/dispatch cost every MoE layer; llama.cpp is native C++;
/// HybriMoE moves allocation into the C++ kernels.
constexpr double kPythonOverhead = 150e-6;   // AdapMoE-style PyTorch loop
constexpr double kKTransOverhead = 120e-6;   // Python frontend + C++ kernels
constexpr double kLlamaCppOverhead = 60e-6;  // native C++ graph walk
constexpr double kHybriMoeOverhead = 40e-6;  // in-kernel task allocation

std::unique_ptr<cache::ExpertCache> make_cache(const moe::ModelConfig& model,
                                               double ratio,
                                               std::unique_ptr<cache::CachePolicy> policy) {
  const std::size_t capacity = cache::ExpertCache::capacity_for_ratio(model, ratio);
  return std::make_unique<cache::ExpertCache>(capacity, std::move(policy));
}

/// Seed (optionally pin) the hottest warmup experts into a fresh cache.
void seed_from_warmup(OffloadEngine& engine, const EngineBuildInfo& info, bool pinned) {
  if (info.warmup_frequencies.empty()) return;
  const auto hottest =
      core::hottest_experts(info.warmup_frequencies, engine.cache().capacity());
  engine.seed_cache(hottest, pinned);
}

}  // namespace

std::unique_ptr<OffloadEngine> make_engine(Framework framework,
                                           const hw::CostModel& costs,
                                           const EngineBuildInfo& info) {
  const moe::ModelConfig& model = costs.model();
  EngineComponents c;
  bool pin_seed = false;

  switch (framework) {
    case Framework::HybriMoE: {
      c.name = to_string(framework);
      sched::SimOptions hybrid_options;  // all features on
      c.scheduler = std::make_unique<sched::HybridScheduler>(hybrid_options);
      c.cache = make_cache(model, info.cache_ratio, std::make_unique<cache::MrsPolicy>());
      c.prefetcher = std::make_unique<core::ImpactDrivenPrefetcher>(
          core::ImpactDrivenPrefetcher::Params{}, hybrid_options);
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = true;
      c.cache_maintenance = true;
      c.per_layer_overhead = kHybriMoeOverhead;
      break;
    }
    case Framework::KTransformers: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::FixedMapScheduler>();
      c.cache = make_cache(model, info.cache_ratio, std::make_unique<cache::LfuPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = false;  // static placement
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kKTransOverhead;
      pin_seed = true;
      break;
    }
    case Framework::AdapMoE: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
      c.cache = make_cache(model, info.cache_ratio, std::make_unique<cache::LruPolicy>());
      c.prefetcher = std::make_unique<core::NextLayerTopPrefetcher>();
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kPythonOverhead;
      break;
    }
    case Framework::LlamaCpp: {
      c.name = to_string(framework);
      c.scheduler =
          std::make_unique<sched::StaticLayerScheduler>(model.num_layers, info.cache_ratio);
      // llama.cpp has no expert cache; residency is the static layer split.
      c.cache = std::make_unique<cache::ExpertCache>(0, std::make_unique<cache::LruPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = false;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kLlamaCppOverhead;
      break;
    }
    case Framework::OnDemand: {
      c.name = to_string(framework);
      c.scheduler = std::make_unique<sched::GpuCentricScheduler>();
      c.cache = make_cache(model, info.cache_ratio, std::make_unique<cache::LruPolicy>());
      c.prefetcher = nullptr;
      c.dynamic_cache_inserts = true;
      c.update_policy_scores = false;
      c.cache_maintenance = false;
      c.per_layer_overhead = kPythonOverhead;
      break;
    }
  }

  c.execution_mode = info.execution_mode;
  c.executor = info.executor;
  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  if (framework != Framework::LlamaCpp) seed_from_warmup(*engine, info, pin_seed);
  return engine;
}

std::unique_ptr<OffloadEngine> make_ablation_engine(const core::HybriMoeConfig& config,
                                                    const hw::CostModel& costs,
                                                    const EngineBuildInfo& info) {
  const moe::ModelConfig& model = costs.model();
  EngineComponents c;
  c.name = config.label();
  // Fixed baseline-level dispatch overhead across all ablation variants: the
  // ablation isolates the three techniques, not the C++ reimplementation.
  c.per_layer_overhead = kKTransOverhead;

  sched::SimOptions hybrid_options;
  if (config.hybrid_scheduling) {
    c.scheduler = std::make_unique<sched::HybridScheduler>(hybrid_options);
  } else {
    c.scheduler = std::make_unique<sched::FixedMapScheduler>();
  }

  bool pin_seed;
  if (config.score_aware_caching) {
    c.cache = make_cache(model, info.cache_ratio,
                         std::make_unique<cache::MrsPolicy>(config.mrs));
    c.dynamic_cache_inserts = true;
    c.update_policy_scores = true;
    c.cache_maintenance = true;
    pin_seed = false;
  } else {
    c.cache = make_cache(model, info.cache_ratio, std::make_unique<cache::LfuPolicy>());
    // Without the caching technique the placement is static — except that
    // scheduling/prefetching variants still admit their own transfers,
    // mirroring how the ablation is stacked on the kTransformers baseline.
    c.dynamic_cache_inserts = config.hybrid_scheduling || config.impact_prefetching;
    c.update_policy_scores = false;
    c.cache_maintenance = false;
    pin_seed = !c.dynamic_cache_inserts;
  }

  if (config.impact_prefetching) {
    const sched::SimOptions impact = config.hybrid_scheduling
                                         ? hybrid_options
                                         : c.scheduler->impact_options();
    c.prefetcher =
        std::make_unique<core::ImpactDrivenPrefetcher>(config.prefetch, impact);
  }

  c.execution_mode = info.execution_mode;
  c.executor = info.executor;
  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  seed_from_warmup(*engine, info, pin_seed);
  return engine;
}

}  // namespace hybrimoe::runtime
