#include "runtime/frameworks.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "cache/expert_cache.hpp"
#include "cache/mrs_policy.hpp"
#include "core/warmup.hpp"
#include "runtime/stack_registry.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

namespace {

/// Per-layer dispatch overheads in microseconds (§V): Python-orchestrated
/// frameworks pay a synchronisation/dispatch cost every MoE layer;
/// llama.cpp is native C++; HybriMoE moves allocation into the C++ kernels.
/// Microseconds are the spec unit; assembly divides by the exactly
/// representable 1e6, which reproduces the historical `Xe-6` second
/// constants bit for bit.
constexpr double kPythonOverheadUs = 150.0;   // AdapMoE-style PyTorch loop
constexpr double kKTransOverheadUs = 120.0;   // Python frontend + C++ kernels
constexpr double kLlamaCppOverheadUs = 60.0;  // native C++ graph walk
constexpr double kHybriMoeOverheadUs = 40.0;  // in-kernel task allocation

util::Registry<Framework>& framework_registry() {
  static util::Registry<Framework> registry = [] {
    util::Registry<Framework> r("framework preset");
    for (const Framework f : kAllFrameworks) r.add(to_string(f), f);
    return r;
  }();
  return registry;
}

}  // namespace

Framework framework_from_name(std::string_view name) {
  return framework_registry().get(name);
}

std::vector<std::string> preset_names() { return framework_registry().names(); }

StackSpec preset_spec(Framework framework) {
  StackSpec spec;  // defaults are the full HybriMoE component set
  spec.name = to_string(framework);
  switch (framework) {
    case Framework::HybriMoE: {
      spec.overhead_us = kHybriMoeOverheadUs;
      break;
    }
    case Framework::KTransformers: {
      spec.scheduler.policy = "fixed-map";
      spec.cache.policy = "lfu";
      spec.prefetch.policy = "none";
      spec.dynamic_cache_inserts = false;  // static placement
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kKTransOverheadUs;
      spec.warmup = WarmupSeeding::Pinned;
      break;
    }
    case Framework::AdapMoE: {
      spec.scheduler.policy = "gpu-centric";
      spec.cache.policy = "lru";
      spec.prefetch.policy = "next-layer";
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kPythonOverheadUs;
      break;
    }
    case Framework::LlamaCpp: {
      spec.scheduler.policy = "static-layer";
      // llama.cpp has no expert cache; residency is the static layer split
      // (the scheduler's gpu_fraction stays unset = the build's cache ratio).
      spec.cache.policy = "lru";
      spec.cache.ratio = 0.0;
      spec.prefetch.policy = "none";
      spec.dynamic_cache_inserts = false;
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kLlamaCppOverheadUs;
      spec.warmup = WarmupSeeding::None;
      break;
    }
    case Framework::OnDemand: {
      spec.scheduler.policy = "gpu-centric";
      spec.cache.policy = "lru";
      spec.prefetch.policy = "none";
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kPythonOverheadUs;
      break;
    }
  }
  return spec;
}

StackSpec preset_spec(std::string_view name) {
  return preset_spec(framework_from_name(name));
}

StackSpec ablation_spec(const core::HybriMoeConfig& config) {
  StackSpec spec;
  spec.name = config.label();
  // Fixed baseline-level dispatch overhead across all ablation variants: the
  // ablation isolates the three techniques, not the C++ reimplementation.
  spec.overhead_us = kKTransOverheadUs;

  spec.scheduler.policy = config.hybrid_scheduling ? "hybrid" : "fixed-map";

  if (config.score_aware_caching) {
    spec.cache.policy = "mrs";
    spec.cache.alpha = config.mrs.alpha;
    spec.cache.top_p_factor = config.mrs.top_p_factor;
    // dynamic_cache_inserts / update_policy_scores / cache_maintenance stay
    // at their defaults (all on) — the §IV-D dynamic caching technique.
  } else {
    spec.cache.policy = "lfu";
    // Without the caching technique the placement is static — except that
    // scheduling/prefetching variants still admit their own transfers,
    // mirroring how the ablation is stacked on the kTransformers baseline.
    spec.dynamic_cache_inserts = config.hybrid_scheduling || config.impact_prefetching;
    spec.update_policy_scores = false;
    spec.cache_maintenance = false;
    spec.warmup = spec.dynamic_cache_inserts ? WarmupSeeding::Seeded
                                             : WarmupSeeding::Pinned;
  }

  if (config.impact_prefetching) {
    spec.prefetch.policy = "impact";
    spec.prefetch.depth = config.prefetch.depth;
    spec.prefetch.confidence_decay = config.prefetch.confidence_decay;
    spec.prefetch.max_per_layer = config.prefetch.max_per_layer;
  } else {
    spec.prefetch.policy = "none";
  }
  return spec;
}

hw::Topology resolve_topology(const TopologySpec& spec) {
  hw::Topology topology = spec.preset.empty()
                              ? hw::Topology::a6000_xeon10()
                              : topology_registry().get(spec.preset)();
  if (spec.devices.has_value() && *spec.devices != topology.num_accelerators()) {
    HYBRIMOE_REQUIRE(*spec.devices >= 1 && *spec.devices <= 254,
                     "topology 'devices' must be in [1, 254]");
    const hw::AcceleratorProfile base = topology.accelerators.front();
    topology.accelerators.resize(*spec.devices, base);
    for (std::size_t i = 0; i < topology.accelerators.size(); ++i)
      topology.accelerators[i].name = "gpu" + std::to_string(i);
    topology.name += " [devices=" + std::to_string(*spec.devices) + "]";
  }
  topology.validate();
  return topology;
}

StackSpec resolve_stack(const std::string& arg) {
  if (!arg.empty() && arg.front() == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    if (!in) throw std::invalid_argument("cannot open stack spec file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_stack_spec(buffer.str());
  }
  if (!arg.empty() && arg.front() == '{') return parse_stack_spec(arg);
  return preset_spec(arg);
}

void print_stack_catalog(std::ostream& os) {
  os << "Framework presets (use the name, or mutate the JSON):\n";
  for (const auto& name : preset_names())
    os << "  " << name << "\n    " << to_json(preset_spec(name)) << "\n";
  auto family = [&os](const char* label, const std::vector<std::string>& names) {
    os << label << ":";
    for (const auto& name : names) os << " " << name;
    os << "\n";
  };
  family("Schedulers", scheduler_registry().names());
  family("Cache policies", cache_policy_registry().names());
  family("Prefetchers", prefetcher_registry().names());
  family("Topology presets", topology_registry().names());
  os << "Stack arguments: preset name | inline JSON ('{...}') | @spec-file\n";
}

std::unique_ptr<OffloadEngine> make_engine(const StackSpec& spec,
                                           const hw::CostModel& costs,
                                           const EngineBuildInfo& info) {
  spec.validate();
  const moe::ModelConfig& model = costs.model();
  ComponentContext ctx{costs, info, spec, nullptr};

  // The spec's topology section describes the device complement the caller
  // must have built the cost model with (resolve_topology); an accelerator
  // count mismatch here means the two disagree.
  if (!spec.topology.empty()) {
    const std::size_t want = resolve_topology(spec.topology).num_accelerators();
    HYBRIMOE_REQUIRE(want == costs.num_accelerators(),
                     "stack spec names a topology with " + std::to_string(want) +
                         " accelerator(s) but the cost model was built with " +
                         std::to_string(costs.num_accelerators()) +
                         " — build the CostModel via resolve_topology(spec.topology)");
  }

  EngineComponents c;
  c.name = spec.display_name();
  c.scheduler = scheduler_registry().get(spec.scheduler.policy)(ctx);
  ctx.scheduler = c.scheduler.get();

  const double ratio = spec.cache.ratio.value_or(info.cache_ratio);
  const CachePolicyFactory& policy_factory =
      cache_policy_registry().get(spec.cache.policy);
  const auto capacity_split = costs.topology().split_cache_capacity(
      cache::ExpertCache::capacity_for_ratio(model, ratio));
  auto primary_policy = policy_factory(ctx);
  // Per-device caches share one Eq. 3 score table when the policy is MRS —
  // routing scores are device-independent (the engine feeds the primary
  // cache only); every other policy keeps independent per-device state.
  const auto* mrs = dynamic_cast<const cache::MrsPolicy*>(primary_policy.get());
  for (std::size_t a = 1; a < capacity_split.size(); ++a) {
    std::unique_ptr<cache::CachePolicy> device_policy =
        mrs != nullptr ? mrs->share_table() : policy_factory(ctx);
    c.extra_caches.push_back(std::make_unique<cache::ExpertCache>(
        capacity_split[a], std::move(device_policy)));
  }
  c.cache = std::make_unique<cache::ExpertCache>(capacity_split.front(),
                                                 std::move(primary_policy));
  c.prefetcher = prefetcher_registry().get(spec.prefetch.policy)(ctx);

  c.dynamic_cache_inserts = spec.dynamic_cache_inserts;
  c.update_policy_scores = spec.update_policy_scores;
  c.cache_maintenance = spec.cache_maintenance;
  c.per_layer_overhead = spec.overhead_us.value_or(kDefaultOverheadUs) / 1e6;
  c.execution_mode = spec.execution.value_or(info.execution_mode);
  c.executor = info.executor;

  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  if (spec.warmup != WarmupSeeding::None && !info.warmup_frequencies.empty()) {
    // Seed against the *total* budget — seed_cache spreads the hottest
    // experts round-robin across the device caches (equals the primary
    // capacity on single-accelerator topologies).
    std::size_t total_capacity = 0;
    for (const std::size_t cap : capacity_split) total_capacity += cap;
    const auto hottest = core::hottest_experts(info.warmup_frequencies, total_capacity);
    engine->seed_cache(hottest, spec.warmup == WarmupSeeding::Pinned);
  }
  return engine;
}

std::unique_ptr<OffloadEngine> make_engine(Framework framework,
                                           const hw::CostModel& costs,
                                           const EngineBuildInfo& info) {
  return make_engine(preset_spec(framework), costs, info);
}

std::unique_ptr<OffloadEngine> make_ablation_engine(const core::HybriMoeConfig& config,
                                                    const hw::CostModel& costs,
                                                    const EngineBuildInfo& info) {
  return make_engine(ablation_spec(config), costs, info);
}

}  // namespace hybrimoe::runtime
