#include "runtime/frameworks.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "cache/expert_cache.hpp"
#include "core/warmup.hpp"
#include "runtime/stack_registry.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

namespace {

/// Per-layer dispatch overheads in microseconds (§V): Python-orchestrated
/// frameworks pay a synchronisation/dispatch cost every MoE layer;
/// llama.cpp is native C++; HybriMoE moves allocation into the C++ kernels.
/// Microseconds are the spec unit; assembly divides by the exactly
/// representable 1e6, which reproduces the historical `Xe-6` second
/// constants bit for bit.
constexpr double kPythonOverheadUs = 150.0;   // AdapMoE-style PyTorch loop
constexpr double kKTransOverheadUs = 120.0;   // Python frontend + C++ kernels
constexpr double kLlamaCppOverheadUs = 60.0;  // native C++ graph walk
constexpr double kHybriMoeOverheadUs = 40.0;  // in-kernel task allocation

util::Registry<Framework>& framework_registry() {
  static util::Registry<Framework> registry = [] {
    util::Registry<Framework> r("framework preset");
    for (const Framework f : kAllFrameworks) r.add(to_string(f), f);
    return r;
  }();
  return registry;
}

}  // namespace

Framework framework_from_name(std::string_view name) {
  return framework_registry().get(name);
}

std::vector<std::string> preset_names() { return framework_registry().names(); }

StackSpec preset_spec(Framework framework) {
  StackSpec spec;  // defaults are the full HybriMoE component set
  spec.name = to_string(framework);
  switch (framework) {
    case Framework::HybriMoE: {
      spec.overhead_us = kHybriMoeOverheadUs;
      break;
    }
    case Framework::KTransformers: {
      spec.scheduler.policy = "fixed-map";
      spec.cache.policy = "lfu";
      spec.prefetch.policy = "none";
      spec.dynamic_cache_inserts = false;  // static placement
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kKTransOverheadUs;
      spec.warmup = WarmupSeeding::Pinned;
      break;
    }
    case Framework::AdapMoE: {
      spec.scheduler.policy = "gpu-centric";
      spec.cache.policy = "lru";
      spec.prefetch.policy = "next-layer";
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kPythonOverheadUs;
      break;
    }
    case Framework::LlamaCpp: {
      spec.scheduler.policy = "static-layer";
      // llama.cpp has no expert cache; residency is the static layer split
      // (the scheduler's gpu_fraction stays unset = the build's cache ratio).
      spec.cache.policy = "lru";
      spec.cache.ratio = 0.0;
      spec.prefetch.policy = "none";
      spec.dynamic_cache_inserts = false;
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kLlamaCppOverheadUs;
      spec.warmup = WarmupSeeding::None;
      break;
    }
    case Framework::OnDemand: {
      spec.scheduler.policy = "gpu-centric";
      spec.cache.policy = "lru";
      spec.prefetch.policy = "none";
      spec.update_policy_scores = false;
      spec.cache_maintenance = false;
      spec.overhead_us = kPythonOverheadUs;
      break;
    }
  }
  return spec;
}

StackSpec preset_spec(std::string_view name) {
  return preset_spec(framework_from_name(name));
}

StackSpec ablation_spec(const core::HybriMoeConfig& config) {
  StackSpec spec;
  spec.name = config.label();
  // Fixed baseline-level dispatch overhead across all ablation variants: the
  // ablation isolates the three techniques, not the C++ reimplementation.
  spec.overhead_us = kKTransOverheadUs;

  spec.scheduler.policy = config.hybrid_scheduling ? "hybrid" : "fixed-map";

  if (config.score_aware_caching) {
    spec.cache.policy = "mrs";
    spec.cache.alpha = config.mrs.alpha;
    spec.cache.top_p_factor = config.mrs.top_p_factor;
    // dynamic_cache_inserts / update_policy_scores / cache_maintenance stay
    // at their defaults (all on) — the §IV-D dynamic caching technique.
  } else {
    spec.cache.policy = "lfu";
    // Without the caching technique the placement is static — except that
    // scheduling/prefetching variants still admit their own transfers,
    // mirroring how the ablation is stacked on the kTransformers baseline.
    spec.dynamic_cache_inserts = config.hybrid_scheduling || config.impact_prefetching;
    spec.update_policy_scores = false;
    spec.cache_maintenance = false;
    spec.warmup = spec.dynamic_cache_inserts ? WarmupSeeding::Seeded
                                             : WarmupSeeding::Pinned;
  }

  if (config.impact_prefetching) {
    spec.prefetch.policy = "impact";
    spec.prefetch.depth = config.prefetch.depth;
    spec.prefetch.confidence_decay = config.prefetch.confidence_decay;
    spec.prefetch.max_per_layer = config.prefetch.max_per_layer;
  } else {
    spec.prefetch.policy = "none";
  }
  return spec;
}

StackSpec resolve_stack(const std::string& arg) {
  if (!arg.empty() && arg.front() == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    if (!in) throw std::invalid_argument("cannot open stack spec file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_stack_spec(buffer.str());
  }
  if (!arg.empty() && arg.front() == '{') return parse_stack_spec(arg);
  return preset_spec(arg);
}

void print_stack_catalog(std::ostream& os) {
  os << "Framework presets (use the name, or mutate the JSON):\n";
  for (const auto& name : preset_names())
    os << "  " << name << "\n    " << to_json(preset_spec(name)) << "\n";
  auto family = [&os](const char* label, const std::vector<std::string>& names) {
    os << label << ":";
    for (const auto& name : names) os << " " << name;
    os << "\n";
  };
  family("Schedulers", scheduler_registry().names());
  family("Cache policies", cache_policy_registry().names());
  family("Prefetchers", prefetcher_registry().names());
  os << "Stack arguments: preset name | inline JSON ('{...}') | @spec-file\n";
}

std::unique_ptr<OffloadEngine> make_engine(const StackSpec& spec,
                                           const hw::CostModel& costs,
                                           const EngineBuildInfo& info) {
  spec.validate();
  const moe::ModelConfig& model = costs.model();
  ComponentContext ctx{costs, info, spec, nullptr};

  EngineComponents c;
  c.name = spec.display_name();
  c.scheduler = scheduler_registry().get(spec.scheduler.policy)(ctx);
  ctx.scheduler = c.scheduler.get();

  const double ratio = spec.cache.ratio.value_or(info.cache_ratio);
  c.cache = std::make_unique<cache::ExpertCache>(
      cache::ExpertCache::capacity_for_ratio(model, ratio),
      cache_policy_registry().get(spec.cache.policy)(ctx));
  c.prefetcher = prefetcher_registry().get(spec.prefetch.policy)(ctx);

  c.dynamic_cache_inserts = spec.dynamic_cache_inserts;
  c.update_policy_scores = spec.update_policy_scores;
  c.cache_maintenance = spec.cache_maintenance;
  c.per_layer_overhead = spec.overhead_us.value_or(kDefaultOverheadUs) / 1e6;
  c.execution_mode = spec.execution.value_or(info.execution_mode);
  c.executor = info.executor;

  auto engine = std::make_unique<OffloadEngine>(std::move(c), costs);
  if (spec.warmup != WarmupSeeding::None && !info.warmup_frequencies.empty()) {
    const auto hottest =
        core::hottest_experts(info.warmup_frequencies, engine->cache().capacity());
    engine->seed_cache(hottest, spec.warmup == WarmupSeeding::Pinned);
  }
  return engine;
}

std::unique_ptr<OffloadEngine> make_engine(Framework framework,
                                           const hw::CostModel& costs,
                                           const EngineBuildInfo& info) {
  return make_engine(preset_spec(framework), costs, info);
}

std::unique_ptr<OffloadEngine> make_ablation_engine(const core::HybriMoeConfig& config,
                                                    const hw::CostModel& costs,
                                                    const EngineBuildInfo& info) {
  return make_engine(ablation_spec(config), costs, info);
}

}  // namespace hybrimoe::runtime
