#pragma once

/// \file stack_spec.hpp
/// The declarative engine-assembly API: a StackSpec names every policy
/// component of an OffloadEngine by string key — scheduler, cache policy,
/// prefetcher — plus the engine flags that differ between frameworks, and
/// runtime::make_engine(spec, costs, info) assembles the stack through the
/// per-family registries (stack_registry.hpp). The five Framework presets
/// (frameworks.hpp) and the Table III ablation variants are plain specs, so
/// the whole cross-product of schedulers x cache policies x prefetchers x
/// execution modes is reachable without recompiling: benches take specs via
/// --stacks, and tools/hybrimoe_run serves a request stream from a spec
/// file.
///
/// Specs round-trip through a tiny hand-rolled JSON subset (objects,
/// strings, numbers, booleans — no dependency):
///
///   {"scheduler": "hybrid",
///    "cache": {"policy": "mrs", "ratio": 0.25},
///    "prefetch": "impact",
///    "topology": {"preset": "dual_a6000", "devices": 2},
///    "cache_maintenance": true,
///    "overhead_us": 40}
///
/// Component entries accept a bare string as shorthand for {"policy": ...}.
/// Unknown keys and unknown component names fail with a did-you-mean error
/// listing the accepted names; parse_stack_spec(to_json(s)) == s for every
/// valid spec.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "scenario/scenario_spec.hpp"
#include "serve_sim/kv.hpp"

namespace hybrimoe::exec {
enum class ExecutionMode : std::uint8_t;  // exec/executor.hpp
}

namespace hybrimoe::runtime {

/// How the engine's cache is pre-populated from warmup statistics.
enum class WarmupSeeding : std::uint8_t {
  None,    ///< no seeding (llama.cpp: residency is the static layer split)
  Seeded,  ///< hottest warmup experts inserted, evictable at runtime
  Pinned,  ///< hottest warmup experts pinned (kTransformers static placement)
};

[[nodiscard]] const char* to_string(WarmupSeeding w);
[[nodiscard]] WarmupSeeding warmup_from_name(std::string_view name);

/// Scheduler selection. Keys match sched::LayerScheduler::name():
/// "hybrid", "fixed-map", "gpu-centric", "static-layer".
struct SchedulerSpec {
  std::string policy = "hybrid";
  /// static-layer only: fraction of layers fully GPU-resident.
  /// Unset: the build's cache ratio (EngineBuildInfo::cache_ratio).
  std::optional<double> gpu_fraction;

  bool operator==(const SchedulerSpec&) const = default;
};

/// Cache selection: replacement policy ("mrs", "lru", "lfu", "fifo",
/// "random") and capacity ratio.
struct CacheSpec {
  std::string policy = "mrs";
  /// GPU expert cache capacity as a fraction of all routed experts.
  /// Unset: the build's cache ratio (EngineBuildInfo::cache_ratio).
  std::optional<double> ratio;
  std::optional<double> alpha;                ///< mrs only: Eq. 3 EMA coefficient
  std::optional<std::size_t> top_p_factor;    ///< mrs only: p = factor * top_k

  bool operator==(const CacheSpec&) const = default;
};

/// Device-complement selection: a named topology preset (registry key, see
/// topology_registry) plus an optional accelerator-count override that
/// replicates/truncates the preset's device list. Empty (the default) means
/// "whatever topology the caller's cost model was built with" — presets stay
/// byte-identical to their single-pair serialisations.
struct TopologySpec {
  std::string preset;                   ///< "" = the build's cost-model topology
  std::optional<std::size_t> devices;   ///< override accelerator count (>= 1)

  bool operator==(const TopologySpec&) const = default;

  /// True when nothing was requested (the spec defers to the cost model).
  [[nodiscard]] bool empty() const {
    return preset.empty() && !devices.has_value();
  }
};

/// Prefetcher selection: "impact", "next-layer" or "none".
struct PrefetchSpec {
  std::string policy = "impact";
  std::optional<std::size_t> depth;            ///< impact only: lookahead layers
  std::optional<double> confidence_decay;      ///< impact only: per-layer discount
  std::optional<std::size_t> max_per_layer;    ///< impact & next-layer: upload cap

  bool operator==(const PrefetchSpec&) const = default;
};

/// Default per-layer dispatch overhead for custom stacks (microseconds):
/// the native C++ runtime level (§V in-kernel task allocation), so that
/// off-preset comparisons isolate policy choices, not frontend overheads.
inline constexpr double kDefaultOverheadUs = 40.0;

/// A complete, declarative description of one inference stack. Value type:
/// copyable, comparable, JSON round-trippable. The five paper frameworks are
/// preset specs (preset_spec in frameworks.hpp); everything else is the
/// newly reachable cross-product.
struct StackSpec {
  /// Display name (engine name). Empty: derived from the component keys
  /// (default_name(), e.g. "hybrid+lru+impact").
  std::string name;
  SchedulerSpec scheduler;
  CacheSpec cache;
  PrefetchSpec prefetch;
  /// Device complement the stack is meant to run on. Callers build the cost
  /// model via resolve_topology(spec.topology) (frameworks.hpp); make_engine
  /// cross-checks the accelerator count against the cost model it is given.
  TopologySpec topology;

  /// On-demand transfers and prefetches become cache residents.
  bool dynamic_cache_inserts = true;
  /// Feed per-layer routing scores to the cache policy (MRS needs this).
  bool update_policy_scores = true;
  /// Score-driven cache maintenance during idle PCIe time (§IV-D).
  bool cache_maintenance = true;
  /// Per-layer framework dispatch overhead in microseconds.
  /// Unset: kDefaultOverheadUs.
  std::optional<double> overhead_us;
  /// Cache pre-population from warmup statistics.
  WarmupSeeding warmup = WarmupSeeding::Seeded;
  /// Execution backend override ("simulated" / "threaded" / "performance").
  /// Unset: the build's mode (EngineBuildInfo::execution_mode).
  std::optional<exec::ExecutionMode> execution;
  /// Fault-injection scenario to run the stack under ("scenario": a preset
  /// name or an inline scenario object — see scenario/scenario_spec.hpp).
  /// Unset (the default): healthy topology, unshaped workload; preset specs
  /// stay byte-identical to their scenario-free serialisations.
  std::optional<scenario::ScenarioSpec> scenario;
  /// KV-cache accounting for serving runs ("kv": {"budget_mb": ...,
  /// "admission": ...} — see serve_sim/kv.hpp). Unset (the default): no
  /// accounting, and preset specs stay byte-identical to their KV-free
  /// serialisations. A bytes_per_token of 0 is resolved from the model at
  /// serve time (serve_sim::model_kv_bytes_per_token).
  std::optional<serve_sim::KvSpec> kv;

  bool operator==(const StackSpec&) const = default;

  /// Component-derived name: "<scheduler>+<cache>[+<prefetch>]".
  [[nodiscard]] std::string default_name() const;
  /// name if set, else default_name().
  [[nodiscard]] std::string display_name() const;

  /// \brief Full validation: every component key must be registered (unknown
  /// keys throw std::invalid_argument with a did-you-mean suggestion), every
  /// option must be in range, and options must match their component (e.g.
  /// cache "alpha" requires policy "mrs"). Called by make_engine.
  void validate() const;
};

/// \brief Parse the JSON-subset spec grammar documented above. Throws
/// std::invalid_argument with the offset and a did-you-mean suggestion on
/// unknown keys; the result is *structurally* valid but component names are
/// only checked by validate()/make_engine (registries may gain entries at
/// runtime).
[[nodiscard]] StackSpec parse_stack_spec(std::string_view text);

/// \brief Canonical JSON form; parse_stack_spec(to_json(s)) == s.
[[nodiscard]] std::string to_json(const StackSpec& spec);

/// \brief Quote + escape a string for the spec's JSON subset ("\\" and
/// "\""). Hand-written JSON emitters (bench/tool artifacts) must use this
/// for any interpolated spec name.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace hybrimoe::runtime
