#pragma once

/// \file session.hpp
/// Experiment harness shared by the benches, the examples and the
/// integration tests. It pins down the fairness rules of the evaluation:
///
///  * every framework sees the *identical* routing trace (traces are
///    generated once per harness and replayed);
///  * warmup statistics come from an independent trace (different seed), so
///    no framework gets oracle knowledge of the evaluation trace;
///  * each run starts from a freshly built engine with a freshly seeded
///    cache.
///
/// Since the serving redesign the harness is a thin adapter over the
/// request-level API: run_prefill/run_decode submit a single request to a
/// ServeEngine (reproducing the stage experiments exactly), and serve() runs
/// a full request stream with continuous batching under the same fairness
/// rules — identical per-request traces and warmup for every framework.

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "runtime/frameworks.hpp"
#include "runtime/serve_engine.hpp"
#include "workload/generator.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::runtime {

/// Full description of one experimental setting.
struct ExperimentSpec {
  moe::ModelConfig model;
  hw::MachineProfile machine = hw::MachineProfile::a6000_xeon10();
  /// Multi-device complement; when set it overrides `machine` as the cost
  /// model's hardware description (machine stays as the legacy single-pair
  /// field so existing specs are untouched).
  std::optional<hw::Topology> topology;
  double cache_ratio = 0.25;
  workload::TraceGenParams trace;  ///< includes the seed
  std::size_t warmup_steps = 48;   ///< decode steps observed by the warmup
  /// Execution backend for built engines (default: pure simulation). The
  /// same traces serve both modes, so modeled-vs-measured comparisons are
  /// apples-to-apples; see ExperimentHarness::set_execution.
  exec::ExecutionMode execution_mode = exec::ExecutionMode::Simulated;
  std::shared_ptr<exec::HybridExecutor> executor;
};

/// Builds the cost model, the shared traces and the warmup statistics once,
/// then runs frameworks / ablation variants against them.
class ExperimentHarness {
 public:
  explicit ExperimentHarness(ExperimentSpec spec);

  [[nodiscard]] const hw::CostModel& costs() const noexcept { return costs_; }
  /// Mutable cost-model access for fault injection (scenario drivers flip
  /// device availability / link scales mid-run). The engines built by this
  /// harness charge against this same instance.
  [[nodiscard]] hw::CostModel& mutable_costs() noexcept { return costs_; }
  [[nodiscard]] const ExperimentSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<std::vector<double>>& warmup_frequencies()
      const noexcept {
    return warmup_frequencies_;
  }

  /// The shared traces (generated on first use, then replayed).
  [[nodiscard]] const workload::PrefillTrace& prefill_trace(std::size_t tokens);
  [[nodiscard]] const workload::DecodeTrace& decode_trace(std::size_t steps);

  /// Build a framework engine with this harness's warmup statistics. Every
  /// Framework-taking runner below has a StackSpec twin, so declarative
  /// stacks (parse_stack_spec, preset_spec mutations, --stacks flags) run
  /// under exactly the fairness rules of the preset experiments.
  [[nodiscard]] std::unique_ptr<OffloadEngine> build(Framework framework) const;
  [[nodiscard]] std::unique_ptr<OffloadEngine> build(
      const core::HybriMoeConfig& config) const;
  [[nodiscard]] std::unique_ptr<OffloadEngine> build(const StackSpec& spec) const;

  /// Switch the execution backend for subsequently built engines — the
  /// knob benches/tests turn to run the *same* harness traces through
  /// simulated and threaded execution (bench_exec_validation's A/B). Pass
  /// Simulated with a non-null executor for reference-output runs.
  void set_execution(exec::ExecutionMode mode,
                     std::shared_ptr<exec::HybridExecutor> executor);

  // -- One-call experiment runners ----------------------------------------
  [[nodiscard]] StageMetrics run_prefill(Framework framework, std::size_t tokens);
  [[nodiscard]] StageMetrics run_decode(Framework framework, std::size_t steps);
  [[nodiscard]] StageMetrics run_prefill(const core::HybriMoeConfig& config,
                                         std::size_t tokens);
  [[nodiscard]] StageMetrics run_decode(const core::HybriMoeConfig& config,
                                        std::size_t steps);
  [[nodiscard]] StageMetrics run_prefill(const StackSpec& spec, std::size_t tokens);
  [[nodiscard]] StageMetrics run_decode(const StackSpec& spec, std::size_t steps);

  // -- Request-level serving runners ---------------------------------------
  /// Materialise request traces deterministically from this harness's
  /// generator — identical for every framework (same fairness rule as the
  /// stage experiments). Sweeps comparing frameworks at one load should
  /// materialise once and hand each serve() call a copy.
  [[nodiscard]] std::vector<Request> materialize(
      std::span<const workload::RequestSpec> requests,
      std::size_t max_prefill_chunk = 0);

  /// Serve a request stream with continuous batching on a freshly built
  /// framework engine (materialises traces internally).
  [[nodiscard]] ServeMetrics serve(Framework framework,
                                   std::span<const workload::RequestSpec> requests,
                                   const ServeOptions& options = {});
  [[nodiscard]] ServeMetrics serve(const core::HybriMoeConfig& config,
                                   std::span<const workload::RequestSpec> requests,
                                   const ServeOptions& options = {});
  [[nodiscard]] ServeMetrics serve(const StackSpec& spec,
                                   std::span<const workload::RequestSpec> requests,
                                   const ServeOptions& options = {});
  /// Serve pre-materialised requests (from materialize()).
  [[nodiscard]] ServeMetrics serve(Framework framework, std::vector<Request> requests,
                                   const ServeOptions& options = {});
  [[nodiscard]] ServeMetrics serve(const StackSpec& spec, std::vector<Request> requests,
                                   const ServeOptions& options = {});

  /// Serve a request stream with *lazy* trace materialisation — traces are
  /// produced at admission and freed at terminal, so live memory is bounded
  /// by the batch instead of the stream (bench/load_sweep's 10^5-10^6
  /// request runs). Bit-identical to serve() on the same specs: per-request
  /// traces derive from (harness seed, request id) either way.
  [[nodiscard]] ServeMetrics serve_stream(
      Framework framework, std::span<const workload::RequestSpec> requests,
      const ServeOptions& options = {});
  [[nodiscard]] ServeMetrics serve_stream(
      const StackSpec& spec, std::span<const workload::RequestSpec> requests,
      const ServeOptions& options = {});

  /// Serving options with the stack's declarative "kv" section applied: the
  /// spec's KvSpec (if any) overrides options.kv, and a bytes_per_token of 0
  /// resolves from this harness's model (serve_sim::model_kv_bytes_per_token).
  [[nodiscard]] ServeOptions resolved_serve_options(const StackSpec& spec,
                                                    ServeOptions options) const;

 private:
  ExperimentSpec spec_;
  hw::CostModel costs_;
  workload::TraceGenerator generator_;
  std::vector<std::vector<double>> warmup_frequencies_;
  std::map<std::size_t, workload::PrefillTrace> prefill_traces_;
  std::map<std::size_t, workload::DecodeTrace> decode_traces_;
};

}  // namespace hybrimoe::runtime
