#pragma once

/// \file frameworks.hpp
/// Factory for the evaluated inference frameworks (§VI-A.3). Each framework
/// is an OffloadEngine assembled from the component set that mirrors the
/// real system's policy:
///
///  * llama.cpp      — static layer mapping, no expert cache;
///  * AdapMoE        — GPU-centric, LRU cache, next-layer prefetch;
///  * kTransformers  — fixed frequency mapping (pinned), LFU, CPU on decode
///                     misses;
///  * HybriMoE       — hybrid scheduling + MRS caching + impact prefetching;
///  * OnDemand       — pure on-demand GPU loading (Fig. 1(a) reference).

#include <array>
#include <memory>

#include "core/ablation.hpp"
#include "runtime/engine.hpp"

namespace hybrimoe::runtime {

enum class Framework : std::uint8_t {
  LlamaCpp,
  AdapMoE,
  KTransformers,
  HybriMoE,
  OnDemand,
};

[[nodiscard]] constexpr const char* to_string(Framework f) noexcept {
  switch (f) {
    case Framework::LlamaCpp: return "llama.cpp";
    case Framework::AdapMoE: return "AdapMoE";
    case Framework::KTransformers: return "KTransformers";
    case Framework::HybriMoE: return "HybriMoE";
    case Framework::OnDemand: return "OnDemand";
  }
  return "?";
}

/// The four frameworks of Figs. 7/8, in the paper's legend order.
inline constexpr std::array<Framework, 4> kPaperFrameworks{
    Framework::LlamaCpp, Framework::AdapMoE, Framework::KTransformers,
    Framework::HybriMoE};

/// Everything needed to assemble an engine.
struct EngineBuildInfo {
  double cache_ratio = 0.25;  ///< GPU expert cache ratio (paper: 25/50/75%)
  /// Warmup activation frequencies (layer x expert); used to seed the cache
  /// and to pick kTransformers' static placement. May be empty.
  std::vector<std::vector<double>> warmup_frequencies;
  std::uint64_t seed = 1;  ///< randomized policies only
  /// Execution backend wiring (see EngineComponents::execution_mode):
  /// Simulated with no executor by default; every framework built from the
  /// same info shares the executor (and therefore its deterministic weight
  /// store, making output digests comparable across frameworks).
  exec::ExecutionMode execution_mode = exec::ExecutionMode::Simulated;
  std::shared_ptr<exec::HybridExecutor> executor;
};

/// Build one of the evaluated frameworks against a cost model.
[[nodiscard]] std::unique_ptr<OffloadEngine> make_engine(Framework framework,
                                                         const hw::CostModel& costs,
                                                         const EngineBuildInfo& info);

/// Build a Table III ablation variant: kTransformers baseline plus any
/// subset of HybriMoE's three techniques.
[[nodiscard]] std::unique_ptr<OffloadEngine> make_ablation_engine(
    const core::HybriMoeConfig& config, const hw::CostModel& costs,
    const EngineBuildInfo& info);

}  // namespace hybrimoe::runtime
