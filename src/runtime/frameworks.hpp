#pragma once

/// \file frameworks.hpp
/// The evaluated inference frameworks (§VI-A.3) as canonical StackSpec
/// presets, plus the engine assembly entry points. Each framework is an
/// OffloadEngine assembled from the component set that mirrors the real
/// system's policy:
///
///  * llama.cpp      — static layer mapping, no expert cache;
///  * AdapMoE        — GPU-centric, LRU cache, next-layer prefetch;
///  * kTransformers  — fixed frequency mapping (pinned), LFU, CPU on decode
///                     misses;
///  * HybriMoE       — hybrid scheduling + MRS caching + impact prefetching;
///  * OnDemand       — pure on-demand GPU loading (Fig. 1(a) reference).
///
/// Since the configuration redesign these are *presets*: preset_spec(f)
/// returns the declarative StackSpec (stack_spec.hpp) and every assembly
/// path — presets, Table III ablation variants, arbitrary off-preset
/// cross-products — goes through make_engine(StackSpec).

#include <array>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "core/ablation.hpp"
#include "runtime/engine.hpp"
#include "runtime/stack_spec.hpp"
#include "util/assert.hpp"

namespace hybrimoe::runtime {

enum class Framework : std::uint8_t {
  LlamaCpp,
  AdapMoE,
  KTransformers,
  HybriMoE,
  OnDemand,
};

/// Every framework, in enum order. The static_assert keeps this (and the
/// exhaustive switch in to_string) in lockstep with the enum: adding a
/// framework without updating both is a compile error.
inline constexpr std::array<Framework, 5> kAllFrameworks{
    Framework::LlamaCpp, Framework::AdapMoE, Framework::KTransformers,
    Framework::HybriMoE, Framework::OnDemand};
static_assert(kAllFrameworks.size() ==
                  static_cast<std::size_t>(Framework::OnDemand) + 1,
              "kAllFrameworks and to_string must cover every Framework value");

/// Canonical display name. Unknown enum values are unrepresentable at this
/// boundary: the switch is exhaustive over the enum and anything cast past
/// it throws (std::logic_error) instead of silently returning a
/// placeholder.
[[nodiscard]] constexpr const char* to_string(Framework f) {
  switch (f) {
    case Framework::LlamaCpp: return "llama.cpp";
    case Framework::AdapMoE: return "AdapMoE";
    case Framework::KTransformers: return "KTransformers";
    case Framework::HybriMoE: return "HybriMoE";
    case Framework::OnDemand: return "OnDemand";
  }
  HYBRIMOE_ASSERT(false, "unrepresentable Framework value");
}

/// Name -> Framework through the preset registry: unknown names throw with a
/// did-you-mean suggestion listing every registered preset.
[[nodiscard]] Framework framework_from_name(std::string_view name);

/// Registered preset names, sorted.
[[nodiscard]] std::vector<std::string> preset_names();

/// The four frameworks of Figs. 7/8, in the paper's legend order.
inline constexpr std::array<Framework, 4> kPaperFrameworks{
    Framework::LlamaCpp, Framework::AdapMoE, Framework::KTransformers,
    Framework::HybriMoE};

/// Everything needed to assemble an engine that is *not* part of the
/// declarative stack description: per-experiment context (cache budget,
/// warmup statistics, seed) and runtime wiring (execution backend). A spec
/// may override cache_ratio (CacheSpec::ratio) and execution_mode
/// (StackSpec::execution); everything else is build-info-only.
struct EngineBuildInfo {
  double cache_ratio = 0.25;  ///< GPU expert cache ratio (paper: 25/50/75%)
  /// Warmup activation frequencies (layer x expert); used to seed the cache
  /// and to pick kTransformers' static placement. May be empty.
  std::vector<std::vector<double>> warmup_frequencies;
  std::uint64_t seed = 1;  ///< randomized policies only
  /// Execution backend wiring (see EngineComponents::execution_mode):
  /// Simulated with no executor by default; every framework built from the
  /// same info shares the executor (and therefore its deterministic weight
  /// store, making output digests comparable across frameworks).
  exec::ExecutionMode execution_mode = exec::ExecutionMode::Simulated;
  std::shared_ptr<exec::HybridExecutor> executor;
};

/// \brief The canonical declarative spec of a framework preset — the exact
/// component set the closed factory used to hard-code. Mutate the result to
/// explore off-preset stacks.
[[nodiscard]] StackSpec preset_spec(Framework framework);

/// \brief preset_spec by name (framework_from_name rules).
[[nodiscard]] StackSpec preset_spec(std::string_view name);

/// \brief The Table III ablation variant as a spec: the kTransformers-style
/// baseline plus any subset of HybriMoE's three techniques, expressed as
/// mutations of the component keys.
[[nodiscard]] StackSpec ablation_spec(const core::HybriMoeConfig& config);

/// \brief Resolve a TopologySpec against the topology registry: empty
/// preset means the paper testbed (hw::Topology::a6000_xeon10()); a
/// `devices` override replicates/truncates the preset's accelerator list to
/// exactly that count (re-deriving names, keeping per-device parameters).
/// Callers build their hw::CostModel from the result before make_engine.
[[nodiscard]] hw::Topology resolve_topology(const TopologySpec& spec);

/// \brief Resolve one stack argument — the CLI grammar shared by the
/// benches' --stacks flag and tools/hybrimoe_run: a registered preset name
/// ("HybriMoE"), an inline JSON spec ("{...}"), or "@path" to a spec file.
/// Throws std::invalid_argument (did-you-mean on unknown presets, offset +
/// suggestion on malformed specs, message on unreadable files).
[[nodiscard]] StackSpec resolve_stack(const std::string& arg);

/// \brief Print the --list-stacks catalogue: every preset with its
/// canonical JSON, and every registered component per family.
void print_stack_catalog(std::ostream& os);

/// \brief Assemble an engine from a declarative stack spec — the one true
/// assembly path. Resolves every component key through the registries
/// (stack_registry.hpp); throws std::invalid_argument with a did-you-mean
/// message on unknown keys and on out-of-range options (StackSpec::validate).
[[nodiscard]] std::unique_ptr<OffloadEngine> make_engine(const StackSpec& spec,
                                                         const hw::CostModel& costs,
                                                         const EngineBuildInfo& info);

/// \brief Build one of the evaluated frameworks: make_engine(preset_spec(f)).
[[nodiscard]] std::unique_ptr<OffloadEngine> make_engine(Framework framework,
                                                         const hw::CostModel& costs,
                                                         const EngineBuildInfo& info);

/// \brief Build a Table III ablation variant: make_engine(ablation_spec(c)).
[[nodiscard]] std::unique_ptr<OffloadEngine> make_ablation_engine(
    const core::HybriMoeConfig& config, const hw::CostModel& costs,
    const EngineBuildInfo& info);

}  // namespace hybrimoe::runtime
