#pragma once

/// \file request.hpp
/// The serving layer's unit of work. A Request carries its workload identity
/// (arrival time, prompt length, decode budget — workload::RequestSpec), the
/// routing traces that realise it, and the lifecycle state the ServeEngine
/// drives it through:
///
///     Queued ──admit──► Prefill ──last chunk──► Decode ──budget──► Finished
///
/// Requests with no prompt chunks (already-prefilled sessions, e.g. the
/// ExperimentHarness decode adapter) enter directly in Decode; requests with
/// no decode budget finish when their last prefill chunk completes.

#include <cstdint>
#include <vector>

#include "workload/request_stream.hpp"
#include "workload/trace.hpp"

namespace hybrimoe::runtime {

enum class RequestState : std::uint8_t { Queued, Prefill, Decode, Finished };

[[nodiscard]] constexpr const char* to_string(RequestState s) noexcept {
  switch (s) {
    case RequestState::Queued: return "queued";
    case RequestState::Prefill: return "prefill";
    case RequestState::Decode: return "decode";
    case RequestState::Finished: return "finished";
  }
  return "?";
}

struct Request {
  workload::RequestSpec spec;
  /// The prompt, split into the chunks the admission policy feeds the batch
  /// (chunk token counts must sum to spec.prompt_tokens). One chunk = whole
  /// prompt unless chunked prefill is enabled.
  std::vector<workload::PrefillTrace> prefill_chunks;
  /// One single-token forward per decode step (spec.decode_tokens steps).
  workload::DecodeTrace decode;

  // -- Lifecycle bookkeeping, owned by the ServeEngine --------------------
  RequestState state = RequestState::Queued;
  std::size_t next_chunk = 0;   ///< prefill progress
  std::size_t next_step = 0;    ///< decode progress
  double admit_time = 0.0;      ///< when the engine moved it out of the queue
  double first_token_time = 0.0;
  double last_token_time = 0.0;
  double finish_time = 0.0;
};

}  // namespace hybrimoe::runtime
