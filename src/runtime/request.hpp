#pragma once

/// \file request.hpp
/// The serving layer's unit of work. A Request carries its workload identity
/// (arrival time, prompt length, decode budget, priority tier —
/// workload::RequestSpec), the routing traces that realise it, and the
/// lifecycle state the ServeEngine drives it through:
///
///     Queued ──admit──► Prefill ──last chunk──► Decode ──budget──► Finished
///                         │   ▲
///                 preempt │   │ resume (next chunk boundary)
///                         ▼   │
///                       Preempted
///
///     Queued ──deadline / queue pressure / context budget──► Rejected
///
/// Requests with no prompt chunks (already-prefilled sessions, e.g. the
/// ExperimentHarness decode adapter) enter directly in Decode; requests with
/// no decode budget finish when their last prefill chunk completes.
/// Preemption only happens at prefill chunk boundaries (a chunk in flight is
/// never torn); Rejected is terminal — a rejected request emits no tokens.
///
/// Ordering tie-break rule: the ServeEngine processes requests in ascending
/// (arrival_time, id) order. Two requests sharing an arrival timestamp are
/// ordered by ascending id, so admission (and therefore every downstream
/// serving metric) is deterministic regardless of the order the caller
/// handed the requests in.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "workload/request_stream.hpp"
#include "workload/trace.hpp"

namespace hybrimoe::runtime {

enum class RequestState : std::uint8_t {
  Queued,
  Prefill,
  Preempted,  ///< prefill paused at a chunk boundary (preemption)
  Decode,
  Finished,
  Rejected,  ///< terminal: never admitted (deadline, queue pressure, budget)
};

[[nodiscard]] constexpr const char* to_string(RequestState s) noexcept {
  switch (s) {
    case RequestState::Queued: return "queued";
    case RequestState::Prefill: return "prefill";
    case RequestState::Preempted: return "preempted";
    case RequestState::Decode: return "decode";
    case RequestState::Finished: return "finished";
    case RequestState::Rejected: return "rejected";
  }
  return "?";
}

struct Request {
  workload::RequestSpec spec;
  /// The prompt, split into the chunks the admission policy feeds the batch
  /// (chunk token counts must sum to spec.prompt_tokens). One chunk = whole
  /// prompt unless chunked prefill is enabled.
  std::vector<workload::PrefillTrace> prefill_chunks;
  /// One single-token forward per decode step (spec.decode_tokens steps).
  workload::DecodeTrace decode;

  // -- Lifecycle bookkeeping, owned by the ServeEngine --------------------
  RequestState state = RequestState::Queued;
  std::size_t next_chunk = 0;   ///< prefill progress
  std::size_t next_step = 0;    ///< decode progress
  double admit_time = 0.0;      ///< when the engine moved it out of the queue
  double first_token_time = 0.0;
  double last_token_time = 0.0;
  double finish_time = 0.0;
  /// Number of Prefill -> Preempted transitions this request suffered.
  std::size_t preemptions = 0;
  /// Consecutive steps this request's prefill has been deferred (reset on
  /// resume) — the engine's no-starvation counter.
  std::size_t preempt_streak = 0;
  /// KV-pressure evict-and-requeue round trips this request suffered (each
  /// discards its progress and returns it to the admission queue).
  std::size_t evictions = 0;

  /// \brief Pause the prefill at the current chunk boundary. Only a request
  /// in Prefill may be preempted; preempting twice (or preempting a decode)
  /// throws std::invalid_argument.
  void preempt(double now) {
    HYBRIMOE_REQUIRE(state == RequestState::Prefill,
                     std::string("only a prefilling request can be preempted "
                                 "(request is ") +
                         runtime::to_string(state) + ")");
    (void)now;
    state = RequestState::Preempted;
    ++preemptions;
  }

  /// \brief Resume a preempted prefill. Only a request in Preempted may be
  /// resumed; anything else throws std::invalid_argument.
  void resume(double now) {
    HYBRIMOE_REQUIRE(state == RequestState::Preempted,
                     std::string("only a preempted request can be resumed "
                                 "(request is ") +
                         runtime::to_string(state) + ")");
    (void)now;
    state = RequestState::Prefill;
    preempt_streak = 0;
  }
};

}  // namespace hybrimoe::runtime
