#include "runtime/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::runtime {

OffloadEngine::OffloadEngine(EngineComponents components, const hw::CostModel& costs)
    : components_(std::move(components)), costs_(costs) {
  HYBRIMOE_REQUIRE(components_.scheduler != nullptr, "engine requires a scheduler");
  HYBRIMOE_REQUIRE(components_.cache != nullptr, "engine requires a cache");
  HYBRIMOE_REQUIRE(!components_.name.empty(), "engine requires a name");
  HYBRIMOE_REQUIRE(components_.execution_mode == exec::ExecutionMode::Simulated ||
                       components_.executor != nullptr,
                   "threaded execution requires an executor");
}

void OffloadEngine::seed_cache(std::span<const moe::ExpertId> experts, bool pinned) {
  for (const auto& id : experts) {
    if (components_.cache->full()) break;
    if (pinned) {
      components_.cache->insert_pinned(id);
    } else {
      (void)components_.cache->insert(id);
    }
  }
}

double OffloadEngine::run_step(const workload::ForwardTrace& forward,
                               sched::Stage stage, StageMetrics& metrics) {
  const auto& model = costs_.model();
  HYBRIMOE_REQUIRE(forward.num_layers() == model.num_layers,
                   "trace layer count does not match the model");
  HYBRIMOE_REQUIRE(forward.tokens > 0, "forward pass with no tokens");

  auto& cache = *components_.cache;
  const double xfer = costs_.transfer_time();
  double latency = 0.0;

  // Execution backend (optional): Threaded lowers every plan onto real
  // threads; Simulated-with-executor runs the single-threaded reference so
  // both modes produce comparable output digests.
  exec::HybridExecutor* executor = components_.executor.get();
  const bool threaded =
      components_.execution_mode == exec::ExecutionMode::Threaded;
  if (executor != nullptr) executor->begin_step();
  // Close the step on any exception below: a (possibly shared) executor
  // left mid-step would make every later begin_step throw, masking the
  // original error. Disarmed before the normal end_step.
  struct StepGuard {
    exec::HybridExecutor* executor;
    ~StepGuard() {
      if (executor != nullptr) executor->abort_step();
    }
  } step_guard{executor};
  // PCIe work (prefetches) still in flight when a layer ends spills into the
  // next layer's link occupancy — the link is asynchronous across layers.
  double pcie_carry = 0.0;

  // During prefill every layer is visited exactly once, so streamed experts
  // go to transient GPU buffers: on-demand uploads are discarded after use
  // and prefetched experts live only until their target layer consumes them.
  // Inserting them into the cache would churn out seeded entries of upcoming
  // layers for zero reuse (the reason the paper's Table III has no prefill
  // "+Caching" row). Decode inserts into the managed cache as usual.
  const bool is_prefill = stage == sched::Stage::Prefill;
  std::unordered_set<moe::ExpertId> transient;
  std::size_t transient_hits = 0;

  for (std::size_t l = 0; l < forward.num_layers(); ++l) {
    const auto layer = static_cast<std::uint16_t>(l);
    const moe::LayerRouting& routing = forward.layers[l];

    // Dense part: attention + shared experts, resident on the GPU. The
    // routed phase overlaps it — the CPU starts misses and PCIe starts
    // transfers while the GPU finishes the dense work (Fig. 5's "Shared
    // Expert" block), so it enters the plan as the GPU start offset.
    const double t_attn = costs_.attention_time(forward.tokens);
    const double t_shared = costs_.shared_experts_time(forward.tokens);
    const double dense = t_attn + t_shared;
    metrics.attention_time += t_attn;
    metrics.shared_time += t_shared;
    const double overhead = costs_.layer_overhead() + components_.per_layer_overhead;
    latency += overhead;

    // Score feed (Eq. 3 input) before this layer's lookups, mirroring the
    // real pipeline: the gate runs first, then cache decisions are made.
    if (components_.update_policy_scores)
      cache.update_scores(layer, routing.scores, model.top_k);

    // Cache lookups for the activated experts, then the demands.
    std::vector<sched::ExpertDemand> demands;
    std::vector<moe::ExpertId> activated_ids;
    for (std::uint32_t e = 0; e < routing.loads.size(); ++e) {
      if (routing.loads[e] == 0) continue;
      const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
      bool hit;
      if (transient.erase(id) > 0) {  // consumed prefetch buffer
        hit = true;
        ++transient_hits;
      } else {
        hit = cache.lookup(id);
      }
      demands.push_back({static_cast<std::uint16_t>(e), routing.loads[e], hit});
      activated_ids.push_back(id);
    }
    if (demands.empty()) {
      latency += dense;
      pcie_carry = std::max(0.0, pcie_carry - dense);
      if (threaded) executor->pace_dense(overhead + dense);
      continue;
    }

    const sched::LayerPlan plan =
        components_.scheduler->schedule(layer, stage, demands, costs_, dense, pcie_carry);
    latency += plan.makespan;  // includes the dense phase (gpu_offset)
    metrics.moe_time += plan.makespan - dense;
    metrics.cpu_busy += plan.cpu_busy;
    metrics.gpu_busy += plan.gpu_busy;
    metrics.pcie_busy += plan.pcie_busy;

    // On-demand transfers become residents (policy-managed admission) in
    // decode; prefill streams them through transient buffers.
    const auto transferred = plan.transferred_experts();
    metrics.transfers += transferred.size();
    if (components_.dynamic_cache_inserts && !is_prefill) {
      for (const auto& id : transferred) (void)cache.insert(id, activated_ids);
    }

    // Speculative uploads may *start* any time the link is free before the
    // layer ends; the last one may still be in flight when the next layer
    // begins (pcie_carry). Each started transfer occupies the link for one
    // expert-transfer time.
    double pcie_cursor = plan.pcie_end;
    // Speculative uploads committed this layer (prefetch + maintenance), in
    // issue order — the execution backend replays them on its copy thread
    // behind the plan's on-demand transfers.
    std::vector<moe::ExpertId> async_copies;

    // Impact-driven (or baseline) prefetching for upcoming layers.
    if (components_.prefetcher != nullptr && components_.dynamic_cache_inserts) {
      const auto decisions = components_.prefetcher->plan(
          forward, l, stage, cache, costs_, plan.makespan - pcie_cursor, &transient);
      for (const auto& d : decisions) {
        const bool uploaded =
            is_prefill ? transient.insert(d.expert).second : cache.insert(d.expert).inserted;
        if (uploaded) {
          ++metrics.prefetches;
          metrics.pcie_busy += xfer;
          pcie_cursor += xfer;
          async_copies.push_back(d.expert);
        }
      }
    }

    // Score-driven maintenance: retain this layer's missed high-priority
    // experts for the next iteration while the link is still idle. This is
    // an inter-iteration technique — meaningless within one prefill forward.
    if (components_.cache_maintenance && components_.dynamic_cache_inserts &&
        !is_prefill) {
      std::vector<moe::ExpertId> missed;
      for (std::size_t i = 0; i < demands.size(); ++i)
        if (!demands[i].cached && !cache.probe(activated_ids[i]))
          missed.push_back(activated_ids[i]);
      std::sort(missed.begin(), missed.end(), [&](moe::ExpertId a, moe::ExpertId b) {
        return cache.policy().priority(a) > cache.policy().priority(b);
      });
      for (const auto& id : missed) {
        if (pcie_cursor >= plan.makespan) break;  // link busy past the layer
        if (cache.full()) {
          const auto victim = cache.peek_victim();
          if (!victim.has_value()) break;
          if (cache.policy().priority(id) <= cache.policy().priority(*victim)) break;
        }
        if (cache.insert(id).inserted) {
          ++metrics.maintenance;
          metrics.pcie_busy += xfer;
          pcie_cursor += xfer;
          async_copies.push_back(id);
        }
      }
    }

    // All cache bookkeeping for the layer is done — now execute the plan.
    // Threaded mode runs it for real (the call returns when every compute
    // task finished; speculative copies keep draining asynchronously);
    // simulated-with-executor computes the reference outputs only.
    if (executor != nullptr) {
      if (threaded) {
        (void)executor->execute_layer(plan, overhead, async_copies, xfer);
      } else {
        (void)executor->execute_layer_reference(plan);
      }
    }

    pcie_carry = std::max(0.0, pcie_cursor - plan.makespan);
  }
  metrics.cache.hits += transient_hits;  // prefetch-buffer hits count as hits
  if (executor != nullptr) {
    step_guard.executor = nullptr;
    const exec::StepResult step = executor->end_step();
    metrics.measured_latency += step.measured;
    metrics.exec_digest = exec::hash_u64(metrics.exec_digest, step.digest);
  }
  return latency;
}

StageMetrics OffloadEngine::run_prefill(const workload::PrefillTrace& trace) {
  StageMetrics metrics;
  metrics.stage = sched::Stage::Prefill;
  metrics.tokens = trace.prompt_tokens;
  components_.cache->reset_stats();
  const double latency = run_step(trace.forward, sched::Stage::Prefill, metrics);
  metrics.per_forward.push_back(latency);
  metrics.total_latency = latency;
  // run_step accumulated transient-buffer hits into metrics.cache.hits;
  // merge them with the cache's own counters.
  cache::CacheStats stats = components_.cache->stats();
  stats.hits += metrics.cache.hits;
  metrics.cache = stats;
  return metrics;
}

StageMetrics OffloadEngine::run_decode(const workload::DecodeTrace& trace) {
  HYBRIMOE_REQUIRE(trace.num_steps() > 0, "decode trace is empty");
  StageMetrics metrics;
  metrics.stage = sched::Stage::Decode;
  metrics.tokens = trace.num_steps();
  components_.cache->reset_stats();
  for (const auto& step : trace.steps) {
    const double latency = run_step(step, sched::Stage::Decode, metrics);
    metrics.per_forward.push_back(latency);
    metrics.total_latency += latency;
  }
  cache::CacheStats stats = components_.cache->stats();
  stats.hits += metrics.cache.hits;
  metrics.cache = stats;
  return metrics;
}

}  // namespace hybrimoe::runtime
