#include "runtime/engine.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace hybrimoe::runtime {

OffloadEngine::OffloadEngine(EngineComponents components, const hw::CostModel& costs)
    : components_(std::move(components)), costs_(costs) {
  HYBRIMOE_REQUIRE(components_.scheduler != nullptr, "engine requires a scheduler");
  HYBRIMOE_REQUIRE(components_.cache != nullptr, "engine requires a cache");
  HYBRIMOE_REQUIRE(!components_.name.empty(), "engine requires a name");
  HYBRIMOE_REQUIRE(components_.execution_mode == exec::ExecutionMode::Simulated ||
                       components_.executor != nullptr,
                   "threaded execution requires an executor");
  HYBRIMOE_REQUIRE(components_.extra_caches.size() + 1 == costs.num_accelerators(),
                   "engine requires one expert cache per accelerator of the topology");
  caches_.push_back(components_.cache.get());
  for (const auto& extra : components_.extra_caches) {
    HYBRIMOE_REQUIRE(extra != nullptr, "null extra device cache");
    caches_.push_back(extra.get());
  }
}

cache::CacheStats OffloadEngine::aggregate_cache_stats() const {
  cache::CacheStats total;
  for (const cache::ExpertCache* cache : caches_) {
    const cache::CacheStats& s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.rejected_insertions += s.rejected_insertions;
  }
  return total;
}

void OffloadEngine::seed_cache(std::span<const moe::ExpertId> experts, bool pinned) {
  const std::size_t n = caches_.size();
  std::size_t next = 0;
  for (const auto& id : experts) {
    const bool any_space = std::any_of(caches_.begin(), caches_.end(),
                                       [](const auto* c) { return !c->full(); });
    if (!any_space) break;
    while (caches_[next % n]->full()) ++next;
    cache::ExpertCache& cache = *caches_[next % n];
    ++next;
    if (pinned) {
      cache.insert_pinned(id);
    } else {
      (void)cache.insert(id);
    }
  }
}

double OffloadEngine::run_step(const workload::ForwardTrace& forward,
                               sched::Stage stage, StageMetrics& metrics) {
  const auto& model = costs_.model();
  HYBRIMOE_REQUIRE(forward.num_layers() == model.num_layers,
                   "trace layer count does not match the model");
  HYBRIMOE_REQUIRE(forward.tokens > 0, "forward pass with no tokens");

  const std::size_t num_devices = caches_.size();
  std::vector<double> xfer(num_devices);
  for (std::size_t a = 0; a < num_devices; ++a) xfer[a] = costs_.transfer_time(a);
  if (metrics.device_transfers.size() != num_devices)
    metrics.device_transfers.resize(num_devices, 0);
  // Device health snapshot for this step: a lost accelerator is never probed
  // for residency and never a transfer target (scenario device_loss).
  std::vector<std::uint8_t> available(num_devices, 1);
  for (std::size_t a = 0; a < num_devices; ++a)
    available[a] = costs_.accelerator_available(a) ? 1 : 0;
  double latency = 0.0;

  // Execution backend (optional): Threaded/Performance lower every plan onto
  // real threads (Performance with pacing dropped); Simulated-with-executor
  // runs the single-threaded reference so all modes produce comparable
  // output digests.
  exec::HybridExecutor* executor = components_.executor.get();
  const bool threaded =
      components_.execution_mode != exec::ExecutionMode::Simulated;
  if (executor != nullptr)
    executor->begin_step(components_.execution_mode !=
                         exec::ExecutionMode::Performance);
  // Close the step on any exception below: a (possibly shared) executor
  // left mid-step would make every later begin_step throw, masking the
  // original error. Disarmed before the normal end_step.
  struct StepGuard {
    exec::HybridExecutor* executor;
    ~StepGuard() {
      if (executor != nullptr) executor->abort_step();
    }
  } step_guard{executor};
  // Link work (prefetches) still in flight when a layer ends spills into the
  // next layer's occupancy of that link — links are asynchronous across
  // layers, one carry per accelerator link.
  std::vector<double> link_carry(num_devices, 0.0);

  // During prefill every layer is visited exactly once, so streamed experts
  // go to transient GPU buffers: on-demand uploads are discarded after use
  // and prefetched experts live only until their target layer consumes them.
  // Inserting them into the cache would churn out seeded entries of upcoming
  // layers for zero reuse (the reason the paper's Table III has no prefill
  // "+Caching" row). Decode inserts into the managed caches as usual. The
  // map value records which device's transient buffer holds the copy.
  const bool is_prefill = stage == sched::Stage::Prefill;
  std::unordered_map<moe::ExpertId, std::uint8_t> transient;
  std::size_t transient_hits = 0;

  for (std::size_t l = 0; l < forward.num_layers(); ++l) {
    const auto layer = static_cast<std::uint16_t>(l);
    const moe::LayerRouting& routing = forward.layers[l];

    // Dense part: attention + shared experts, resident on the accelerators.
    // The routed phase overlaps it — the CPU starts misses and the links
    // start transfers while the accelerators finish the dense work (Fig. 5's
    // "Shared Expert" block), so it enters the plan as the device start
    // offset.
    const double t_attn = costs_.attention_time(forward.tokens);
    const double t_shared = costs_.shared_experts_time(forward.tokens);
    const double dense = t_attn + t_shared;
    metrics.attention_time += t_attn;
    metrics.shared_time += t_shared;
    const double overhead = costs_.layer_overhead() + components_.per_layer_overhead;
    latency += overhead;

    // Score feed (Eq. 3 input) before this layer's lookups, mirroring the
    // real pipeline: the gate runs first, then cache decisions are made.
    // One feed to the primary cache suffices — per-device MRS instances
    // share the score table (MrsPolicy::share_table).
    if (components_.update_policy_scores)
      caches_[0]->update_scores(layer, routing.scores, model.top_k);

    // Cache lookups for the activated experts, then the demands. Residency
    // is resolved across every device cache; the miss is charged to the
    // primary cache (aggregate stats are what the metrics report).
    std::vector<sched::ExpertDemand> demands;
    std::vector<moe::ExpertId> activated_ids;
    for (std::uint32_t e = 0; e < routing.loads.size(); ++e) {
      if (routing.loads[e] == 0) continue;
      const moe::ExpertId id{layer, static_cast<std::uint16_t>(e)};
      bool hit = false;
      sched::DeviceId resident_on = sched::kGpuDevice;
      if (const auto it = transient.find(id); it != transient.end()) {
        hit = true;  // consumed prefetch buffer
        resident_on = sched::accelerator_device(it->second);
        transient.erase(it);
        ++transient_hits;
      } else {
        for (std::size_t a = 0; a < num_devices; ++a) {
          if (available[a] == 0) continue;
          if (caches_[a]->probe(id)) {
            hit = true;
            resident_on = sched::accelerator_device(a);
            break;
          }
        }
        if (hit) {
          (void)caches_[resident_on.accel_index()]->lookup(id);
        } else {
          caches_[0]->record_miss(id);
        }
      }
      demands.push_back(
          {static_cast<std::uint16_t>(e), routing.loads[e], hit, resident_on});
      activated_ids.push_back(id);
    }
    if (demands.empty()) {
      latency += dense;
      for (double& carry : link_carry) carry = std::max(0.0, carry - dense);
      if (threaded) executor->pace_dense(overhead + dense);
      continue;
    }

    const sched::LayerPlan plan = components_.scheduler->schedule(
        layer, stage, demands, costs_, dense, link_carry[0], link_carry);
    latency += plan.makespan;  // includes the dense phase (gpu_offset)
    metrics.moe_time += plan.makespan - dense;
    metrics.cpu_busy += plan.cpu_busy;
    metrics.gpu_busy += plan.gpu_busy;
    metrics.pcie_busy += plan.pcie_busy;

    // On-demand transfers become residents of the device that pulled them
    // (policy-managed admission) in decode; prefill streams them through
    // transient buffers.
    for (const auto& t : plan.tasks) {
      if (!t.transferred) continue;
      ++metrics.transfers;
      ++metrics.device_transfers[t.device.accel_index()];
      if (components_.dynamic_cache_inserts && !is_prefill)
        (void)caches_[t.device.accel_index()]->insert(t.expert, activated_ids);
    }

    // Speculative uploads may *start* any time some link is free before the
    // layer ends; the last ones may still be in flight when the next layer
    // begins (link_carry). Each started transfer occupies its link for one
    // expert-transfer time.
    std::vector<double> link_cursor(num_devices);
    for (std::size_t a = 0; a < num_devices; ++a) link_cursor[a] = plan.link_end(a);
    // Upload placement order: least-loaded link first (lowest index on
    // ties). An upload rejected by one device's cache falls through to the
    // next link, so a full or zero-capacity device never starves the rest.
    const auto links_by_cursor = [&link_cursor, &available] {
      std::vector<std::size_t> order;
      order.reserve(link_cursor.size());
      for (std::size_t a = 0; a < link_cursor.size(); ++a)
        if (available[a] != 0) order.push_back(a);
      std::stable_sort(order.begin(), order.end(), [&link_cursor](auto a, auto b) {
        return link_cursor[a] < link_cursor[b];
      });
      return order;
    };
    // Speculative uploads committed this layer (prefetch + maintenance), in
    // issue order with their target link — the execution backend replays
    // them on the link's copy thread behind the plan's on-demand transfers.
    std::vector<exec::AsyncCopy> async_copies;

    // Residency the prefetcher cannot see through the primary cache:
    // transient prefill buffers plus the extra devices' caches.
    const auto extra_resident = [&] {
      std::unordered_set<moe::ExpertId> extra;
      for (const auto& [id, dev] : transient) extra.insert(id);
      for (std::size_t a = 1; a < num_devices; ++a)
        for (const moe::ExpertId id : caches_[a]->residents()) extra.insert(id);
      return extra;
    };

    // Impact-driven (or baseline) prefetching for upcoming layers.
    if (components_.prefetcher != nullptr && components_.dynamic_cache_inserts) {
      // Idle-window sum across links; a backed-up link contributes zero, it
      // must not cancel another link's genuine idle time. (Single-link:
      // clamping is decision-identical — the prefetcher plans nothing for
      // any budget <= 0.)
      double budget = 0.0;
      for (std::size_t a = 0; a < num_devices; ++a)
        budget += std::max(0.0, plan.makespan - link_cursor[a]);
      const auto resident_elsewhere = extra_resident();
      const auto decisions = components_.prefetcher->plan(
          forward, l, stage, *caches_[0], costs_, budget, &resident_elsewhere);
      for (const auto& d : decisions) {
        bool uploaded = false;
        std::size_t placed_on = 0;
        for (const std::size_t a : links_by_cursor()) {
          uploaded = is_prefill ? transient
                                      .emplace(d.expert,
                                               static_cast<std::uint8_t>(a))
                                      .second
                                : caches_[a]->insert(d.expert).inserted;
          if (uploaded) {
            placed_on = a;
            break;
          }
          // A transient-buffer rejection means the expert is already staged
          // — no other link would change that.
          if (is_prefill) break;
        }
        if (uploaded) {
          ++metrics.prefetches;
          ++metrics.device_transfers[placed_on];
          metrics.pcie_busy += xfer[placed_on];
          link_cursor[placed_on] += xfer[placed_on];
          async_copies.push_back({d.expert, placed_on, xfer[placed_on]});
        }
      }
    }

    // Score-driven maintenance: retain this layer's missed high-priority
    // experts for the next iteration while some link is still idle. This is
    // an inter-iteration technique — meaningless within one prefill forward.
    if (components_.cache_maintenance && components_.dynamic_cache_inserts &&
        !is_prefill) {
      std::vector<moe::ExpertId> missed;
      for (std::size_t i = 0; i < demands.size(); ++i) {
        if (demands[i].cached) continue;
        const auto resident = [&](const moe::ExpertId id) {
          for (std::size_t a = 0; a < num_devices; ++a)
            if (caches_[a]->probe(id)) return true;
          return false;
        };
        if (!resident(activated_ids[i])) missed.push_back(activated_ids[i]);
      }
      const cache::CachePolicy& policy = caches_[0]->policy();
      std::sort(missed.begin(), missed.end(), [&](moe::ExpertId a, moe::ExpertId b) {
        return policy.priority(a) > policy.priority(b);
      });
      for (const auto& id : missed) {
        // Try links least-loaded first; a device whose policy refuses the
        // candidate (its victim outranks it) yields to the next device
        // rather than ending maintenance for the layer. Candidates are
        // priority-descending, so once one is refused by *every* idle
        // link's device, the rest would be too — stop then.
        bool placed = false;
        for (const std::size_t a : links_by_cursor()) {
          if (link_cursor[a] >= plan.makespan) break;  // rest are busier still
          cache::ExpertCache& target = *caches_[a];
          if (target.full()) {
            const auto victim = target.peek_victim();
            if (!victim.has_value() ||
                target.policy().priority(id) <= target.policy().priority(*victim))
              continue;  // this device refuses; try the next link
          }
          if (target.insert(id).inserted) {
            ++metrics.maintenance;
            ++metrics.device_transfers[a];
            metrics.pcie_busy += xfer[a];
            link_cursor[a] += xfer[a];
            async_copies.push_back({id, a, xfer[a]});
            placed = true;
          }
          break;  // insert attempted on the chosen device either way
        }
        if (!placed) break;  // all links busy, or no device admits this one
      }
    }

    // All cache bookkeeping for the layer is done — now execute the plan.
    // Threaded mode runs it for real (the call returns when every compute
    // task finished; speculative copies keep draining asynchronously);
    // simulated-with-executor computes the reference outputs only.
    if (executor != nullptr) {
      if (threaded) {
        (void)executor->execute_layer(plan, overhead, async_copies);
      } else {
        (void)executor->execute_layer_reference(plan);
      }
    }

    for (std::size_t a = 0; a < num_devices; ++a)
      link_carry[a] = std::max(0.0, link_cursor[a] - plan.makespan);
  }
  metrics.cache.hits += transient_hits;  // prefetch-buffer hits count as hits
  if (executor != nullptr) {
    step_guard.executor = nullptr;
    const exec::StepResult step = executor->end_step();
    metrics.measured_latency += step.measured;
    metrics.exec_digest = exec::hash_u64(metrics.exec_digest, step.digest);
  }
  return latency;
}

StageMetrics OffloadEngine::run_prefill(const workload::PrefillTrace& trace) {
  StageMetrics metrics;
  metrics.stage = sched::Stage::Prefill;
  metrics.tokens = trace.prompt_tokens;
  for (cache::ExpertCache* cache : caches_) cache->reset_stats();
  const double latency = run_step(trace.forward, sched::Stage::Prefill, metrics);
  metrics.per_forward.push_back(latency);
  metrics.total_latency = latency;
  // run_step accumulated transient-buffer hits into metrics.cache.hits;
  // merge them with the caches' own counters.
  cache::CacheStats stats = aggregate_cache_stats();
  stats.hits += metrics.cache.hits;
  metrics.cache = stats;
  return metrics;
}

StageMetrics OffloadEngine::run_decode(const workload::DecodeTrace& trace) {
  HYBRIMOE_REQUIRE(trace.num_steps() > 0, "decode trace is empty");
  StageMetrics metrics;
  metrics.stage = sched::Stage::Decode;
  metrics.tokens = trace.num_steps();
  for (cache::ExpertCache* cache : caches_) cache->reset_stats();
  for (const auto& step : trace.steps) {
    const double latency = run_step(step, sched::Stage::Decode, metrics);
    metrics.per_forward.push_back(latency);
    metrics.total_latency += latency;
  }
  cache::CacheStats stats = aggregate_cache_stats();
  stats.hits += metrics.cache.hits;
  metrics.cache = stats;
  return metrics;
}

}  // namespace hybrimoe::runtime
