#include "runtime/stack_registry.hpp"

#include "cache/classic_policies.hpp"
#include "cache/mrs_policy.hpp"

namespace hybrimoe::runtime {

util::Registry<SchedulerFactory>& scheduler_registry() {
  static util::Registry<SchedulerFactory> registry("scheduler");
  return registry;
}

util::Registry<CachePolicyFactory>& cache_policy_registry() {
  static util::Registry<CachePolicyFactory> registry("cache policy");
  return registry;
}

util::Registry<PrefetcherFactory>& prefetcher_registry() {
  static util::Registry<PrefetcherFactory> registry("prefetcher");
  return registry;
}

util::Registry<TopologyFactory>& topology_registry() {
  static util::Registry<TopologyFactory> registry("topology preset");
  return registry;
}

// ---------------------------------------------------------------------------
// Built-in components. Keys match each component's name() where it has one,
// so registry listings and engine internals agree on vocabulary.
// ---------------------------------------------------------------------------

namespace {

// -- Schedulers (§IV-B and the baselines of Table I) -------------------------

const SchedulerRegistrar kHybridScheduler{
    "hybrid", [](const ComponentContext&) -> std::unique_ptr<sched::LayerScheduler> {
      return std::make_unique<sched::HybridScheduler>();
    }};

const SchedulerRegistrar kFixedMapScheduler{
    "fixed-map", [](const ComponentContext&) -> std::unique_ptr<sched::LayerScheduler> {
      return std::make_unique<sched::FixedMapScheduler>();
    }};

const SchedulerRegistrar kGpuCentricScheduler{
    "gpu-centric", [](const ComponentContext&) -> std::unique_ptr<sched::LayerScheduler> {
      return std::make_unique<sched::GpuCentricScheduler>();
    }};

const SchedulerRegistrar kStaticLayerScheduler{
    "static-layer",
    [](const ComponentContext& ctx) -> std::unique_ptr<sched::LayerScheduler> {
      const double fraction =
          ctx.spec.scheduler.gpu_fraction.value_or(ctx.info.cache_ratio);
      return std::make_unique<sched::StaticLayerScheduler>(ctx.costs.model().num_layers,
                                                           fraction);
    }};

// -- Cache replacement policies (§IV-D and the classics it is compared to) ---

const CachePolicyRegistrar kMrsPolicy{
    "mrs", [](const ComponentContext& ctx) -> std::unique_ptr<cache::CachePolicy> {
      cache::MrsPolicy::Params params;
      if (ctx.spec.cache.alpha.has_value()) params.alpha = *ctx.spec.cache.alpha;
      if (ctx.spec.cache.top_p_factor.has_value())
        params.top_p_factor = *ctx.spec.cache.top_p_factor;
      return std::make_unique<cache::MrsPolicy>(params);
    }};

const CachePolicyRegistrar kLruPolicy{
    "lru", [](const ComponentContext&) -> std::unique_ptr<cache::CachePolicy> {
      return std::make_unique<cache::LruPolicy>();
    }};

const CachePolicyRegistrar kLfuPolicy{
    "lfu", [](const ComponentContext&) -> std::unique_ptr<cache::CachePolicy> {
      return std::make_unique<cache::LfuPolicy>();
    }};

const CachePolicyRegistrar kFifoPolicy{
    "fifo", [](const ComponentContext&) -> std::unique_ptr<cache::CachePolicy> {
      return std::make_unique<cache::FifoPolicy>();
    }};

const CachePolicyRegistrar kRandomPolicy{
    "random", [](const ComponentContext& ctx) -> std::unique_ptr<cache::CachePolicy> {
      return std::make_unique<cache::RandomPolicy>(ctx.info.seed);
    }};

// -- Prefetchers (§IV-C and the AdapMoE baseline) ----------------------------

const PrefetcherRegistrar kImpactPrefetcher{
    "impact", [](const ComponentContext& ctx) -> std::unique_ptr<core::Prefetcher> {
      core::ImpactDrivenPrefetcher::Params params;
      if (ctx.spec.prefetch.depth.has_value()) params.depth = *ctx.spec.prefetch.depth;
      if (ctx.spec.prefetch.confidence_decay.has_value())
        params.confidence_decay = *ctx.spec.prefetch.confidence_decay;
      if (ctx.spec.prefetch.max_per_layer.has_value())
        params.max_per_layer = *ctx.spec.prefetch.max_per_layer;
      HYBRIMOE_ASSERT(ctx.scheduler != nullptr,
                      "the impact prefetcher is built after the scheduler");
      // Impact estimation simulates the schedule the prefetch will benefit,
      // so the options come from the stack's own scheduler.
      return std::make_unique<core::ImpactDrivenPrefetcher>(
          params, ctx.scheduler->impact_options());
    }};

const PrefetcherRegistrar kNextLayerPrefetcher{
    "next-layer", [](const ComponentContext& ctx) -> std::unique_ptr<core::Prefetcher> {
      if (ctx.spec.prefetch.max_per_layer.has_value())
        return std::make_unique<core::NextLayerTopPrefetcher>(
            *ctx.spec.prefetch.max_per_layer);
      return std::make_unique<core::NextLayerTopPrefetcher>();
    }};

const PrefetcherRegistrar kNoPrefetcher{
    "none", [](const ComponentContext&) -> std::unique_ptr<core::Prefetcher> {
      return nullptr;
    }};

// -- Topology presets (hw/topology.hpp) --------------------------------------

const TopologyRegistrar kA6000Topology{
    "a6000_xeon10", [] { return hw::Topology::a6000_xeon10(); }};

const TopologyRegistrar kDualA6000Topology{
    "dual_a6000", [] { return hw::Topology::dual_a6000(); }};

const TopologyRegistrar kQuadSimTopology{
    "quad_sim", [] { return hw::Topology::quad_sim(); }};

const TopologyRegistrar kLaptopEdgeTopology{
    "laptop_edge",
    [] { return hw::Topology::from_machine(hw::MachineProfile::laptop_edge()); }};

const TopologyRegistrar kUnitTestTopology{
    "unit_test",
    [] { return hw::Topology::from_machine(hw::MachineProfile::unit_test_machine()); }};

}  // namespace

}  // namespace hybrimoe::runtime
