#pragma once

/// \file engine.hpp
/// The offloading inference engine: walks a routing trace layer by layer,
/// charges dense work (attention, shared experts) to the accelerators, asks
/// its scheduler for a routed-expert plan over the cost model's device
/// topology, applies cache effects (on-demand inserts into the pulling
/// device's cache, score-driven maintenance) and spends idle link time on
/// prefetching (each upload routed to the least-busy link). Every framework
/// in the evaluation is an OffloadEngine with different components — so
/// end-to-end comparisons isolate policy choices. A single-accelerator
/// topology reproduces the historical CPU+GPU pair bit for bit.

#include <memory>
#include <string>

#include "cache/expert_cache.hpp"
#include "core/prefetcher.hpp"
#include "exec/executor.hpp"
#include "hw/cost_model.hpp"
#include "runtime/metrics.hpp"
#include "sched/schedulers.hpp"
#include "workload/trace.hpp"

namespace hybrimoe::runtime {

/// Everything that differs between frameworks.
struct EngineComponents {
  std::string name;
  std::unique_ptr<sched::LayerScheduler> scheduler;  ///< required
  /// Primary accelerator's expert cache (required; may be 0-capacity).
  std::unique_ptr<cache::ExpertCache> cache;
  /// Expert caches of accelerators 1..N-1, in topology order — exactly one
  /// per extra accelerator of the engine's cost-model topology (empty on
  /// the classic single-GPU pair). make_engine splits the capacity budget
  /// by the topology's cache shares and shares MRS score tables.
  std::vector<std::unique_ptr<cache::ExpertCache>> extra_caches;
  std::unique_ptr<core::Prefetcher> prefetcher;      ///< optional

  /// On-demand transfers and prefetches become cache residents.
  bool dynamic_cache_inserts = true;
  /// Feed per-layer routing scores to the cache policy (MRS needs this).
  bool update_policy_scores = true;
  /// Score-driven cache maintenance: spend leftover PCIe idle time uploading
  /// missed experts whose retention priority beats the eviction victim's
  /// (the dynamic half of §IV-D, active across iterations).
  bool cache_maintenance = false;
  /// Fixed per-layer framework dispatch overhead. The paper's §V moves task
  /// allocation out of Python into the C++ kernels precisely because this
  /// term is significant in Python-orchestrated baselines.
  double per_layer_overhead = 0.0;

  /// Which backend executes the scheduler's plans. Simulated charges the
  /// plan's modeled times only (the default, and the only mode that needs
  /// no executor); Threaded additionally lowers every plan onto real
  /// threads via `executor`, paced to the scaled modeled durations, and
  /// records wall-clock measurements in StageMetrics::measured_latency;
  /// Performance runs the identical lowering unpaced, so measured_latency
  /// is real kernel/copy wall time (digests match Threaded bit-for-bit).
  exec::ExecutionMode execution_mode = exec::ExecutionMode::Simulated;
  /// Execution backend. Required for Threaded/Performance modes; optional
  /// in Simulated mode, where — if present — it runs the single-threaded
  /// reference path so all modes produce comparable layer-output digests.
  /// May be shared across engines that run sequentially (see
  /// exec::HybridExecutor thread-safety notes: one engine step at a time).
  std::shared_ptr<exec::HybridExecutor> executor;
};

/// The per-layer offloading loop. Not internally synchronized: one engine
/// serves one logical stream of steps from one thread at a time (in Threaded
/// mode that calling thread *is* the GPU lane of the execution backend).
class OffloadEngine {
 public:
  /// \brief Assemble an engine from its policy components against a cost
  /// model (which must outlive the engine). Throws std::invalid_argument on
  /// missing required components (scheduler, cache, name, or — in Threaded
  /// mode — the executor).
  OffloadEngine(EngineComponents components, const hw::CostModel& costs);

  /// \brief Framework name (stable for the engine's lifetime).
  [[nodiscard]] const std::string& name() const noexcept { return components_.name; }
  /// \brief The primary accelerator's expert cache (engine-thread only).
  [[nodiscard]] cache::ExpertCache& cache() noexcept { return *components_.cache; }
  /// \brief Const view of the primary accelerator's expert cache.
  [[nodiscard]] const cache::ExpertCache& cache() const noexcept {
    return *components_.cache;
  }
  /// \brief Number of accelerator devices (== the cost model's topology).
  [[nodiscard]] std::size_t num_devices() const noexcept { return caches_.size(); }
  /// \brief Expert cache of accelerator `accel` (topology index; 0 is the
  /// primary cache). Engine-thread only.
  [[nodiscard]] cache::ExpertCache& device_cache(std::size_t accel) noexcept {
    return *caches_[accel];
  }
  /// \brief Hit/miss/insert counters summed across every device cache.
  [[nodiscard]] cache::CacheStats aggregate_cache_stats() const;
  /// \brief The analytical cost model this engine charges against.
  [[nodiscard]] const hw::CostModel& costs() const noexcept { return costs_; }
  /// \brief The layer scheduler (engine-thread only).
  [[nodiscard]] sched::LayerScheduler& scheduler() noexcept {
    return *components_.scheduler;
  }
  /// \brief Active execution mode (fixed at construction).
  [[nodiscard]] exec::ExecutionMode execution_mode() const noexcept {
    return components_.execution_mode;
  }
  /// \brief The execution backend, if one is attached (may be null; may be
  /// shared across engines that run sequentially).
  [[nodiscard]] const std::shared_ptr<exec::HybridExecutor>& executor()
      const noexcept {
    return components_.executor;
  }

  /// \brief Pre-populate the device caches (from warmup frequencies),
  /// filling across devices round-robin. Pinned entries model static
  /// placements that never change at runtime.
  void seed_cache(std::span<const moe::ExpertId> experts, bool pinned);

  /// \brief Run one prefill request; returns TTFT and friends.
  [[nodiscard]] StageMetrics run_prefill(const workload::PrefillTrace& trace);

  /// \brief Run a decode phase; returns per-token latencies and TBT.
  [[nodiscard]] StageMetrics run_decode(const workload::DecodeTrace& trace);

  /// \brief Step-level entry point: process one forward pass — a prefill
  /// chunk, a decode step, or a continuous-batching composition of several
  /// requests (workload::merge_forward_traces) — under the given stage's
  /// scheduling semantics, accumulating engine counters into `metrics` (the
  /// caller owns per_forward/total_latency/cache bookkeeping). Returns the
  /// *modeled* pass latency in every mode; in Threaded mode the wall-clock
  /// measurement additionally lands in metrics.measured_latency and the
  /// layer-output digest in metrics.exec_digest.
  /// run_prefill/run_decode and the ServeEngine are thin loops over this.
  /// Engine-thread only: in Threaded mode the calling thread runs the GPU
  /// lane (dense phase + routed GPU experts) while the backend's worker
  /// pool and copy thread run the CPU and PCIe lanes.
  double run_step(const workload::ForwardTrace& forward, sched::Stage stage,
                  StageMetrics& metrics);

 private:
  EngineComponents components_;
  const hw::CostModel& costs_;
  /// Per-device cache view: [components_.cache, extra_caches...], one entry
  /// per accelerator of the topology.
  std::vector<cache::ExpertCache*> caches_;
};

}  // namespace hybrimoe::runtime
