#pragma once

/// \file stack_registry.hpp
/// Per-family component registries behind the StackSpec assembly path: each
/// scheduler / cache policy / prefetcher factory registers itself under its
/// string key, make_engine(StackSpec) resolves keys through these
/// registries, and unknown keys fail with a did-you-mean error listing the
/// registered names (util/registry.hpp).
///
/// Lifetime: each registry is a function-local static — constructed on first
/// access, alive for the rest of the process. The built-in components
/// (stack_registry.cpp) self-register via Registrar objects during static
/// initialisation of that translation unit, which is linked whenever
/// make_engine is; user code may register additional components at any time
/// before building a spec that names them. Registration is not
/// thread-safe — register before spawning engine threads.

#include <functional>
#include <memory>

#include "cache/policy.hpp"
#include "core/prefetcher.hpp"
#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "runtime/frameworks.hpp"
#include "sched/schedulers.hpp"
#include "util/registry.hpp"

namespace hybrimoe::runtime {

/// Everything a component factory may consult: the cost model (for model
/// shapes), the build info (cache ratio, seed, executor wiring) and the full
/// spec (per-component options). `scheduler` carries the already-built
/// scheduler for factories that depend on it — the impact prefetcher takes
/// its simulation options from the scheduler it will benefit — and is null
/// while the scheduler itself is being built.
struct ComponentContext {
  const hw::CostModel& costs;
  const EngineBuildInfo& info;
  const StackSpec& spec;
  sched::LayerScheduler* scheduler = nullptr;
};

using SchedulerFactory =
    std::function<std::unique_ptr<sched::LayerScheduler>(const ComponentContext&)>;
using CachePolicyFactory =
    std::function<std::unique_ptr<cache::CachePolicy>(const ComponentContext&)>;
/// May return nullptr — the "none" prefetcher is registered as exactly that,
/// so spec validation and did-you-mean listings treat it as a first-class key.
using PrefetcherFactory =
    std::function<std::unique_ptr<core::Prefetcher>(const ComponentContext&)>;

/// Builds a named device topology. Factories take no context — a topology
/// is pure hardware description; TopologySpec's `devices` override is
/// applied afterwards by resolve_topology (frameworks.hpp).
using TopologyFactory = std::function<hw::Topology()>;

/// The scheduler family ("hybrid", "fixed-map", "gpu-centric", "static-layer").
[[nodiscard]] util::Registry<SchedulerFactory>& scheduler_registry();
/// The cache replacement-policy family ("mrs", "lru", "lfu", "fifo", "random").
[[nodiscard]] util::Registry<CachePolicyFactory>& cache_policy_registry();
/// The prefetcher family ("impact", "next-layer", "none").
[[nodiscard]] util::Registry<PrefetcherFactory>& prefetcher_registry();
/// The topology presets ("a6000_xeon10", "dual_a6000", "quad_sim",
/// "laptop_edge", "unit_test").
[[nodiscard]] util::Registry<TopologyFactory>& topology_registry();

/// Self-registration helpers: a namespace-scope registrar object adds its
/// factory when its translation unit is initialised.
///
///   namespace {
///   const runtime::SchedulerRegistrar reg{"my-sched", [](const auto& ctx) {
///     return std::make_unique<MyScheduler>(...);
///   }};
///   }  // namespace
struct SchedulerRegistrar {
  SchedulerRegistrar(std::string name, SchedulerFactory factory) {
    scheduler_registry().add(std::move(name), std::move(factory));
  }
};
struct CachePolicyRegistrar {
  CachePolicyRegistrar(std::string name, CachePolicyFactory factory) {
    cache_policy_registry().add(std::move(name), std::move(factory));
  }
};
struct PrefetcherRegistrar {
  PrefetcherRegistrar(std::string name, PrefetcherFactory factory) {
    prefetcher_registry().add(std::move(name), std::move(factory));
  }
};
/// Self-registration helper for topology presets (see SchedulerRegistrar).
struct TopologyRegistrar {
  TopologyRegistrar(std::string name, TopologyFactory factory) {
    topology_registry().add(std::move(name), std::move(factory));
  }
};

}  // namespace hybrimoe::runtime
