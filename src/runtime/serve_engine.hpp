#pragma once

/// \file serve_engine.hpp
/// Request-level serving on top of the offload runtime. The ServeEngine
/// wraps an OffloadEngine with an admission queue and continuous batching:
/// each step it composes a mixed batch — at most one prefill chunk (the
/// earliest-admitted request still in Prefill) plus every active decode —
/// merges the per-request routings into the combined per-layer expert
/// multiset (workload::merge_forward_traces), and drives the wrapped
/// engine's scheduler / cache / prefetcher machinery through it via
/// OffloadEngine::run_step. The scheduling regime of a mixed step follows
/// the token mass (sched::dominant_stage).
///
/// Time is the cost model's virtual clock: each composed step advances it by
/// the step's simulated latency; idle gaps waiting for the next arrival
/// advance it to that arrival. Admission is FIFO in arrival order with a
/// `max_batch` cap, so no request starves: slots free as requests finish and
/// the queue drains in order.

#include <memory>
#include <span>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/request.hpp"
#include "runtime/serve_metrics.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::runtime {

/// Serving-loop knobs.
struct ServeOptions {
  /// Maximum concurrently active (admitted, unfinished) requests.
  std::size_t max_batch = 8;
  /// Prompt chunk size: materialize_requests splits prompts into chunks of
  /// at most this many tokens (0 = whole prompt in one step), and
  /// ServeEngine::run enforces that the requests it is handed respect it.
  std::size_t max_prefill_chunk = 0;

  /// \brief Throws std::invalid_argument on structurally invalid options.
  void validate() const;
};

/// Materialise routing traces for a request stream: per request, reset the
/// generator to a seed derived from (generator seed, request id), then
/// generate its prompt chunks and decode steps as one continuous latent
/// process. Deterministic per request and independent of batch composition,
/// so every framework serves byte-identical traffic and a request's routing
/// doesn't change when the batching dynamics do.
[[nodiscard]] std::vector<Request> materialize_requests(
    workload::TraceGenerator& generator,
    std::span<const workload::RequestSpec> specs, std::size_t max_prefill_chunk = 0);

/// Request-level serving loop over one OffloadEngine. Not internally
/// synchronized: like the engine it wraps, a ServeEngine serves from one
/// thread at a time — in Threaded execution mode the calling thread is the
/// GPU lane of every composed step (see exec::HybridExecutor).
class ServeEngine {
 public:
  /// \brief Take ownership of the engine that will run every composed step.
  explicit ServeEngine(std::unique_ptr<OffloadEngine> engine);

  /// \brief The wrapped offload engine (caller's thread only).
  [[nodiscard]] OffloadEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const OffloadEngine& engine() const noexcept { return *engine_; }

  /// \brief Serve the stream to completion. Requests must be freshly
  /// materialised (Queued, cursors at zero, chunk/step counts matching their
  /// specs); they are processed FIFO by arrival time. Returns per-request
  /// metrics in arrival order plus the aggregate step metrics (including,
  /// in Threaded execution mode, accumulated measured_latency/exec_digest);
  /// asserts that every request finished with exactly its budgeted tokens.
  [[nodiscard]] ServeMetrics run(std::vector<Request> requests,
                                 const ServeOptions& options = {});

 private:
  std::unique_ptr<OffloadEngine> engine_;
};

}  // namespace hybrimoe::runtime
