#pragma once

/// \file serve_engine.hpp
/// Request-level serving on top of the offload runtime. The ServeEngine
/// wraps an OffloadEngine with an admission queue and continuous batching:
/// each step it composes a mixed batch — at most one prefill chunk (the
/// earliest-admitted request still in Prefill) plus every active decode —
/// merges the per-request routings into the combined per-layer expert
/// multiset (workload::merge_forward_traces), and drives the wrapped
/// engine's scheduler / cache / prefetcher machinery through it via
/// OffloadEngine::run_step. The scheduling regime of a mixed step follows
/// the token mass (sched::dominant_stage).
///
/// Time is the cost model's virtual clock: each composed step advances it by
/// the step's simulated latency; idle gaps waiting for the next arrival
/// advance it to that arrival.
///
/// Admission is FIFO in (arrival, id) order with a `max_batch` cap by
/// default, so no request starves: slots free as requests finish and the
/// queue drains in order. Three opt-in policies layer on top (each is
/// default-off and, when off, leaves the serving loop bit-identical to the
/// plain FIFO engine):
///  * priority_admission — waiting requests are admitted highest tier first
///    (VIP > standard > best-effort), FIFO within a tier;
///  * per-tier admission control — a tier with a `ttft_deadline` rejects
///    requests still queued past it, a tier with a `queue_capacity` rejects
///    the newest overflow, and `max_context_tokens` rejects requests whose
///    prompt + decode budget exceeds the context window (all rejections are
///    terminal: the request is recorded with rejected=true and emits no
///    tokens);
///  * preemption — a long prefill is paused at a chunk boundary whenever
///    composing its next chunk would push a *higher-tier* active decode past
///    its tier's TBT SLO; the decode-only step runs instead, and the prefill
///    resumes once the pressure clears (or unconditionally after
///    `max_consecutive_preemptions` deferred steps — the no-starvation
///    valve).

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/request.hpp"
#include "runtime/serve_metrics.hpp"
#include "serve_sim/event.hpp"
#include "serve_sim/kv.hpp"
#include "workload/generator.hpp"

namespace hybrimoe::runtime {

/// Completed-step summary handed to StepHook::after_step. The serving-state
/// block (waiting depths, cumulative rejection/preemption/KV counters) is
/// snapshotted when the step is composed — hooks are pure observers, so the
/// extra fields cost nothing on the hook-free fast path (the core fills the
/// struct unconditionally either way).
struct StepInfo {
  std::size_t index = 0;        ///< engine step index (0-based, idle gaps excluded)
  double start_clock = 0.0;     ///< serving clock when the step began
  double end_clock = 0.0;       ///< serving clock after the step's latency
  double latency = 0.0;         ///< modeled step latency
  sched::Stage stage = sched::Stage::Prefill;  ///< dominant scheduling regime
  std::size_t prefill_tokens = 0;
  std::size_t decode_tokens = 0;
  std::size_t active_requests = 0;  ///< batch size when the step ran
  std::size_t waiting_requests = 0;  ///< surfaced, unadmitted when composed
  /// Waiting requests per priority tier (workload::priority_index order).
  std::array<std::size_t, workload::kNumPriorities> waiting_by_tier{};
  std::size_t rejected_total = 0;     ///< cumulative admission rejections
  std::size_t preemptions_total = 0;  ///< cumulative deferred prefill steps
  double kv_used_bytes = 0.0;   ///< KV reservation when composed (0 = no KV)
  double kv_peak_bytes = 0.0;   ///< KV high-water mark so far
  std::size_t kv_evictions_total = 0;  ///< cumulative KV-pressure evictions
};

/// Observation/perturbation points around every composed serving step — the
/// seam the scenario fault drivers (scenario/drivers.hpp) plug into. All
/// callbacks default to no-ops; ServeOptions::hook == nullptr skips them
/// entirely (and keeps the single-part fast path, so hook-free serving is
/// bit-identical to the pre-hook engine).
class StepHook {
 public:
  virtual ~StepHook() = default;
  /// Before the step's batch is composed: mutate engine/topology state
  /// (degrade a link, lose a device) as of serving instant `clock`.
  virtual void before_step(std::size_t step_index, double clock,
                           OffloadEngine& engine) {
    (void)step_index, (void)clock, (void)engine;
  }
  /// After merging, before execution: perturb the step's routing trace
  /// (cache-thrash rotation). Only called when a hook is installed.
  virtual void transform_step(std::size_t step_index,
                              workload::ForwardTrace& merged) {
    (void)step_index, (void)merged;
  }
  /// After the step completed and the clock advanced; `steps` holds the
  /// cumulative engine counters (device_transfers et al.).
  virtual void after_step(const StepInfo& info, const StageMetrics& steps) {
    (void)info, (void)steps;
  }
  /// Every event the discrete-event core pops, in (time, seq) order —
  /// arrivals, per-part completions, transfer landings, finishes, KV
  /// evictions. Observation only (the event has already been applied);
  /// scenario drivers record timelines from this feed.
  virtual void on_sim_event(const serve_sim::Event& event) { (void)event; }
};

/// Admission/SLO policy of one priority tier (ServeOptions::tiers, indexed
/// by workload::priority_index). All fields default to "no policy".
struct TierPolicy {
  /// Target inter-token gap for this tier's decodes; 0 = no SLO. Drives
  /// preemption: a lower-tier prefill defers when it would push one of this
  /// tier's decodes past the SLO.
  double tbt_slo = 0.0;
  /// Reject a request still waiting `ttft_deadline` after its arrival;
  /// 0 = wait forever.
  double ttft_deadline = 0.0;
  /// Maximum waiting (surfaced, unadmitted) requests of this tier; the
  /// newest overflow is rejected. Unset = unbounded. 0 is invalid — a tier
  /// that admits nothing is a configuration error, not a policy.
  std::optional<std::size_t> queue_capacity;

  /// \brief Throws std::invalid_argument on negative SLOs/deadlines or a
  /// zero-capacity queue.
  void validate() const;
};

/// Serving-loop knobs.
struct ServeOptions {
  /// Maximum concurrently active (admitted, unfinished) requests.
  std::size_t max_batch = 8;
  /// Prompt chunk size: materialize_requests splits prompts into chunks of
  /// at most this many tokens (0 = whole prompt in one step), and
  /// ServeEngine::run enforces that the requests it is handed respect it.
  std::size_t max_prefill_chunk = 0;

  /// Admit highest tier first (FIFO within a tier). Off: pure FIFO.
  bool priority_admission = false;
  /// Pause lower-tier prefills at chunk boundaries to protect higher-tier
  /// decode SLOs (see the file comment). Off: prefills never defer.
  bool preemption = false;
  /// No-starvation valve: after this many consecutively deferred steps the
  /// prefill runs regardless of SLO pressure. Must be >= 1.
  std::size_t max_consecutive_preemptions = 4;
  /// Context window: reject requests with prompt + decode budget above this
  /// many tokens. 0 = unlimited.
  std::size_t max_context_tokens = 0;
  /// Per-tier admission/SLO policy, indexed by workload::priority_index.
  std::array<TierPolicy, workload::kNumPriorities> tiers{};
  /// KV-cache memory accounting (serve_sim/kv.hpp). Disabled by default
  /// (budget 0) — the serving loop is then bit-identical to the pre-KV
  /// engine. When enabled, bytes_per_token must be resolved (derive it from
  /// the model with serve_sim::model_kv_bytes_per_token) and every admission
  /// reserves the request's full-context footprint against the budget.
  serve_sim::KvSpec kv;
  /// Step observation/perturbation hook (scenario drivers). Not owned; must
  /// outlive the run. nullptr = no hook (the bit-identical default).
  StepHook* hook = nullptr;

  /// \brief Throws std::invalid_argument on structurally invalid options.
  void validate() const;
};

/// Materialise routing traces for a request stream: per request, reset the
/// generator to a seed derived from (generator seed, request id), then
/// generate its prompt chunks and decode steps as one continuous latent
/// process. Deterministic per request and independent of batch composition,
/// so every framework serves byte-identical traffic and a request's routing
/// doesn't change when the batching dynamics do.
[[nodiscard]] std::vector<Request> materialize_requests(
    workload::TraceGenerator& generator,
    std::span<const workload::RequestSpec> specs, std::size_t max_prefill_chunk = 0);

/// Request-level serving loop over one OffloadEngine. Not internally
/// synchronized: like the engine it wraps, a ServeEngine serves from one
/// thread at a time — in Threaded execution mode the calling thread is the
/// GPU lane of every composed step (see exec::HybridExecutor).
class ServeEngine {
 public:
  /// \brief Take ownership of the engine that will run every composed step.
  explicit ServeEngine(std::unique_ptr<OffloadEngine> engine);

  /// \brief The wrapped offload engine (caller's thread only).
  [[nodiscard]] OffloadEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const OffloadEngine& engine() const noexcept { return *engine_; }

  /// \brief Serve the stream to completion. Requests must be freshly
  /// materialised (Queued, cursors at zero, chunk/step counts matching their
  /// specs); they are processed in (arrival, id) order (see request.hpp for
  /// the tie-break rule). Returns per-request metrics in that order plus the
  /// aggregate step metrics (including, in Threaded execution mode,
  /// accumulated measured_latency/exec_digest); asserts that every request
  /// ended terminal — finished with exactly its budgeted tokens, or rejected
  /// by admission control with none.
  [[nodiscard]] ServeMetrics run(std::vector<Request> requests,
                                 const ServeOptions& options = {});

  /// \brief Serve a stream of request *specs*, materialising each request's
  /// routing traces lazily at admission and releasing them at terminal —
  /// live trace memory is bounded by the batch size instead of the stream
  /// length, which is what lets bench/load_sweep push 10^5-10^6 requests
  /// through one run. Per-request traces are seeded from (generator seed,
  /// request id), so the result is bit-identical to materialize_requests +
  /// run on the same specs. The generator must outlive the call and is left
  /// reset to the last served request's derived seed.
  [[nodiscard]] ServeMetrics serve_stream(workload::TraceGenerator& generator,
                                          std::span<const workload::RequestSpec> specs,
                                          const ServeOptions& options = {});

 private:
  std::unique_ptr<OffloadEngine> engine_;
};

}  // namespace hybrimoe::runtime
