#include "hw/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::hw {

void MachineProfile::validate() const {
  HYBRIMOE_REQUIRE(cpu.valid(), "cpu device parameters invalid");
  HYBRIMOE_REQUIRE(gpu.valid(), "gpu device parameters invalid");
  HYBRIMOE_REQUIRE(pcie.valid(), "pcie link parameters invalid");
}

MachineProfile MachineProfile::a6000_xeon10() {
  MachineProfile m;
  m.name = "A6000 + Xeon-5220R(10c)";
  // 10 cores of a 2.2 GHz Xeon on llama.cpp Q4 dequant-GEMM kernels: well
  // below AVX-512 peak, and ~35 GB/s of the shared DDR4 bandwidth.
  m.cpu = {.flops = 150e9, .mem_bandwidth = 35e9, .launch_overhead = 4e-6,
           .warmup_penalty = 80e-6, .flops_peak = 450e9, .flops_ramp_half = 4.0};
  // A6000: 38.7 TF fp32 peak, Marlin 4-bit GEMM sustains far above that on
  // tensor cores; memory 768 GB/s peak -> ~700 sustained.
  m.gpu = {.flops = 60e12, .mem_bandwidth = 700e9, .launch_overhead = 30e-6,
           .warmup_penalty = 0.0};
  // PCIe 4.0 x16: 32 GB/s raw, ~25 GB/s effective with pinned-memory DMA.
  m.pcie = {.bandwidth = 25e9, .latency = 15e-6};
  return m;
}

MachineProfile MachineProfile::laptop_edge() {
  MachineProfile m;
  m.name = "Laptop dGPU + 8c mobile CPU";
  m.cpu = {.flops = 120e9, .mem_bandwidth = 28e9, .launch_overhead = 5e-6,
           .warmup_penalty = 60e-6, .flops_peak = 300e9, .flops_ramp_half = 4.0};
  m.gpu = {.flops = 18e12, .mem_bandwidth = 270e9, .launch_overhead = 35e-6,
           .warmup_penalty = 0.0};
  m.pcie = {.bandwidth = 12e9, .latency = 20e-6};
  return m;
}

MachineProfile MachineProfile::unit_test_machine() {
  // Engineered so that, for a model whose routed expert has exactly 1 FLOP
  // per token-parameter unit... in practice tests pair this with
  // ModelConfig::tiny() and only rely on the ratios documented here:
  //   cpu_expert_time(load)  ~= load seconds (flop bound, no overheads)
  //   gpu_expert_time(load)  ~= 1 second     (bandwidth bound, flat)
  //   transfer_time()        ~= 3 seconds
  MachineProfile m;
  m.name = "unit-test";
  const moe::ModelConfig tiny = moe::ModelConfig::tiny();
  const double expert_flops_per_token = tiny.routed.flops(1);
  const auto expert_bytes = static_cast<double>(tiny.routed.bytes(4.25));
  m.cpu = {.flops = expert_flops_per_token, .mem_bandwidth = 1e18,
           .launch_overhead = 0.0, .warmup_penalty = 0.0};
  m.gpu = {.flops = 1e18, .mem_bandwidth = expert_bytes, .launch_overhead = 0.0,
           .warmup_penalty = 0.0};
  m.pcie = {.bandwidth = expert_bytes / 3.0, .latency = 0.0};
  return m;
}

CostModel::CostModel(MachineProfile machine, moe::ModelConfig model)
    : machine_(std::move(machine)), model_(std::move(model)) {
  machine_.validate();
  model_.validate();
}

double CostModel::compute_time(const ComputeDeviceParams& dev, double flops, double bytes,
                               std::size_t tokens, bool warm) const noexcept {
  const double compute_bound = flops / dev.effective_flops(tokens);
  const double memory_bound = bytes / dev.mem_bandwidth;
  double t = dev.launch_overhead + std::max(compute_bound, memory_bound);
  if (!warm) t += dev.warmup_penalty;
  return t;
}

double CostModel::cpu_expert_time(std::size_t tokens, bool warm) const {
  HYBRIMOE_REQUIRE(tokens > 0, "cpu_expert_time requires a positive load");
  return compute_time(machine_.cpu, model_.routed.flops(tokens),
                      static_cast<double>(model_.routed_expert_bytes()), tokens, warm);
}

double CostModel::gpu_expert_time(std::size_t tokens) const {
  HYBRIMOE_REQUIRE(tokens > 0, "gpu_expert_time requires a positive load");
  return compute_time(machine_.gpu, model_.routed.flops(tokens),
                      static_cast<double>(model_.routed_expert_bytes()), tokens,
                      /*warm=*/true);
}

double CostModel::transfer_time() const noexcept {
  return machine_.pcie.latency +
         static_cast<double>(model_.routed_expert_bytes()) / machine_.pcie.bandwidth;
}

double CostModel::shared_experts_time(std::size_t tokens) const {
  if (model_.num_shared_experts == 0) return 0.0;
  HYBRIMOE_REQUIRE(tokens > 0, "shared_experts_time requires a positive load");
  const auto n = static_cast<double>(model_.num_shared_experts);
  return compute_time(machine_.gpu, n * model_.shared.flops(tokens),
                      n * static_cast<double>(model_.shared_expert_bytes()), tokens,
                      /*warm=*/true);
}

double CostModel::attention_time(std::size_t tokens) const {
  HYBRIMOE_REQUIRE(tokens > 0, "attention_time requires a positive load");
  return compute_time(machine_.gpu,
                      model_.attention_flops_per_token() * static_cast<double>(tokens),
                      static_cast<double>(model_.attention_bytes()), tokens,
                      /*warm=*/true);
}

}  // namespace hybrimoe::hw
