#include "hw/cost_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hybrimoe::hw {

CostModel::CostModel(MachineProfile machine, moe::ModelConfig model)
    : CostModel(Topology::from_machine(machine), std::move(model)) {}

CostModel::CostModel(Topology topology, moe::ModelConfig model)
    : topology_(std::move(topology)), model_(std::move(model)) {
  topology_.validate();
  model_.validate();
  machine_ = topology_.primary_machine();
  accel_available_.assign(topology_.accelerators.size(), 1);
  link_scale_.assign(topology_.accelerators.size(), 1.0);
}

bool CostModel::accelerator_available(std::size_t accel) const {
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  return accel_available_[accel] != 0;
}

void CostModel::set_accelerator_available(std::size_t accel, bool available) {
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  if (!available) {
    HYBRIMOE_REQUIRE(accel >= 1,
                     "the primary accelerator (index 0) cannot be lost — it "
                     "hosts the dense pipeline");
    HYBRIMOE_REQUIRE(accel_available_[accel] != 0,
                     "losing an already-lost accelerator");
  } else {
    HYBRIMOE_REQUIRE(accel_available_[accel] == 0,
                     "recovering an accelerator that is still available");
  }
  accel_available_[accel] = available ? 1 : 0;
}

double CostModel::link_bandwidth_scale(std::size_t accel) const {
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  return link_scale_[accel];
}

void CostModel::set_link_bandwidth_scale(std::size_t accel, double scale) {
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  HYBRIMOE_REQUIRE(scale > 0.0, "link bandwidth scale must be positive");
  link_scale_[accel] = scale;
}

double CostModel::compute_time(const ComputeDeviceParams& dev, double flops, double bytes,
                               std::size_t tokens, bool warm) const noexcept {
  const double compute_bound = flops / dev.effective_flops(tokens);
  const double memory_bound = bytes / dev.mem_bandwidth;
  double t = dev.launch_overhead + std::max(compute_bound, memory_bound);
  if (!warm) t += dev.warmup_penalty;
  return t;
}

double CostModel::cpu_expert_time(std::size_t tokens, bool warm) const {
  HYBRIMOE_REQUIRE(tokens > 0, "cpu_expert_time requires a positive load");
  return compute_time(topology_.cpu, model_.routed.flops(tokens),
                      static_cast<double>(model_.routed_expert_bytes()), tokens, warm);
}

double CostModel::gpu_expert_time(std::size_t tokens) const {
  return gpu_expert_time(tokens, 0);
}

double CostModel::gpu_expert_time(std::size_t tokens, std::size_t accel) const {
  HYBRIMOE_REQUIRE(tokens > 0, "gpu_expert_time requires a positive load");
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  return compute_time(topology_.accelerators[accel].compute, model_.routed.flops(tokens),
                      static_cast<double>(model_.routed_expert_bytes()), tokens,
                      /*warm=*/true);
}

double CostModel::transfer_time() const noexcept {
  // bandwidth * 1.0 is exact, so a healthy link is bit-identical to the
  // pre-fault model.
  const TransferLinkParams& link = topology_.accelerators.front().link;
  return link.latency + static_cast<double>(model_.routed_expert_bytes()) /
                            (link.bandwidth * link_scale_.front());
}

double CostModel::transfer_time(std::size_t accel) const {
  HYBRIMOE_REQUIRE(accel < topology_.accelerators.size(),
                   "accelerator index out of range");
  const TransferLinkParams& link = topology_.accelerators[accel].link;
  return link.latency + static_cast<double>(model_.routed_expert_bytes()) /
                            (link.bandwidth * link_scale_[accel]);
}

double CostModel::shared_experts_time(std::size_t tokens) const {
  if (model_.num_shared_experts == 0) return 0.0;
  HYBRIMOE_REQUIRE(tokens > 0, "shared_experts_time requires a positive load");
  const auto n = static_cast<double>(model_.num_shared_experts);
  return compute_time(topology_.accelerators.front().compute,
                      n * model_.shared.flops(tokens),
                      n * static_cast<double>(model_.shared_expert_bytes()), tokens,
                      /*warm=*/true);
}

double CostModel::attention_time(std::size_t tokens) const {
  HYBRIMOE_REQUIRE(tokens > 0, "attention_time requires a positive load");
  return compute_time(topology_.accelerators.front().compute,
                      model_.attention_flops_per_token() * static_cast<double>(tokens),
                      static_cast<double>(model_.attention_bytes()), tokens,
                      /*warm=*/true);
}

}  // namespace hybrimoe::hw
