#pragma once

/// \file timeline.hpp
/// Per-resource busy timelines: the data structure behind both the
/// scheduler's greedy simulation and the "executed" Gantt charts the example
/// programs print. One Timeline == one serially-occupied resource (the CPU
/// expert pool, the GPU compute stream, or the PCIe copy stream).

#include <cstddef>
#include <string>
#include <vector>

#include "moe/expert_id.hpp"
#include "util/assert.hpp"

namespace hybrimoe::hw {

/// The three serially-occupied resources of the hybrid system.
enum class Resource : std::uint8_t { Cpu = 0, Gpu = 1, Pcie = 2 };

[[nodiscard]] constexpr const char* to_string(Resource r) noexcept {
  switch (r) {
    case Resource::Cpu: return "CPU";
    case Resource::Gpu: return "GPU";
    case Resource::Pcie: return "PCIe";
  }
  return "?";
}

/// What an interval on a timeline represents.
enum class OpKind : std::uint8_t {
  CpuCompute,
  GpuCompute,
  Transfer,       ///< on-demand expert upload (critical path)
  Prefetch,       ///< speculative upload for a future layer
  SharedExperts,  ///< pinned shared-expert computation
  Attention,      ///< dense attention + norms
};

[[nodiscard]] constexpr const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::CpuCompute: return "cpu";
    case OpKind::GpuCompute: return "gpu";
    case OpKind::Transfer: return "xfer";
    case OpKind::Prefetch: return "pref";
    case OpKind::SharedExperts: return "shared";
    case OpKind::Attention: return "attn";
  }
  return "?";
}

/// A half-open busy interval [start, end) tagged with its operation.
struct Interval {
  double start = 0.0;
  double end = 0.0;
  OpKind kind = OpKind::CpuCompute;
  moe::ExpertId expert;  ///< meaningful for expert ops; zero otherwise
  std::uint32_t load = 0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
};

/// Append-only busy timeline for one resource.
class Timeline {
 public:
  explicit Timeline(Resource resource) : resource_(resource) {}

  [[nodiscard]] Resource resource() const noexcept { return resource_; }
  [[nodiscard]] double busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  /// Schedule a task that may start no earlier than `earliest`; it begins at
  /// max(earliest, busy_until). Returns the scheduled interval.
  Interval schedule(double earliest, double duration, OpKind kind,
                    moe::ExpertId expert = {}, std::uint32_t load = 0);

  /// Total busy seconds.
  [[nodiscard]] double busy_time() const noexcept;
  /// busy / horizon (0 if the horizon is empty).
  [[nodiscard]] double utilization(double horizon) const noexcept;
  /// Idle time before `horizon` (the budget the prefetcher spends on PCIe).
  [[nodiscard]] double idle_before(double horizon) const noexcept;

  void clear() noexcept {
    busy_until_ = 0.0;
    intervals_.clear();
  }

 private:
  Resource resource_;
  double busy_until_ = 0.0;
  std::vector<Interval> intervals_;
};

/// Fixed-size bundle of the three resource timelines.
struct TimelineSet {
  Timeline cpu{Resource::Cpu};
  Timeline gpu{Resource::Gpu};
  Timeline pcie{Resource::Pcie};

  [[nodiscard]] Timeline& of(Resource r) {
    switch (r) {
      case Resource::Cpu: return cpu;
      case Resource::Gpu: return gpu;
      case Resource::Pcie: return pcie;
    }
    HYBRIMOE_ASSERT(false, "unknown resource");
  }

  [[nodiscard]] double makespan() const noexcept;
  void clear() noexcept {
    cpu.clear();
    gpu.clear();
    pcie.clear();
  }
};

/// Render a fixed-width ASCII Gantt chart of the three timelines
/// (used by examples/schedule_trace to reproduce the paper's Fig. 5).
[[nodiscard]] std::string render_gantt(const TimelineSet& timelines, std::size_t width = 72);

}  // namespace hybrimoe::hw
