#pragma once

/// \file calibration.hpp
/// The paper's warmup phase (§IV-A): before inference, HybriMoE measures CPU
/// and GPU processing speeds and transfer latency, then schedules against the
/// fitted model. Here the "measurements" come from a ground-truth CostModel
/// perturbed with multiplicative noise (tests/examples wire that up), and the
/// fitting code reconstructs a MachineProfile from raw samples exactly as the
/// real system would from wall-clock timings.

#include <functional>
#include <span>
#include <vector>

#include "hw/cost_model.hpp"
#include "util/rng.hpp"

namespace hybrimoe::hw {

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// One timed expert execution at a given token load.
struct ComputeSample {
  std::size_t tokens = 0;
  double seconds = 0.0;
};

/// One timed transfer of `bytes` across the link.
struct TransferSample {
  double bytes = 0.0;
  double seconds = 0.0;
};

/// Raw warmup measurements for one device or link.
struct WarmupMeasurements {
  std::vector<ComputeSample> cpu_warm;      ///< steady-state CPU expert timings
  std::vector<double> cpu_first_extra;      ///< first-task-minus-warm deltas
  std::vector<double> cpu_empty_task;       ///< empty-dispatch timings (launch cost)
  std::vector<ComputeSample> gpu_times;     ///< GPU expert timings across loads
  std::vector<double> gpu_empty_task;       ///< GPU launch cost samples
  std::vector<TransferSample> transfers;    ///< PCIe timings across sizes
};

/// Fits a MachineProfile from raw samples for a given model geometry
/// (the geometry converts token counts into FLOPs/bytes).
[[nodiscard]] MachineProfile fit_machine_profile(const WarmupMeasurements& samples,
                                                 const moe::ModelConfig& model,
                                                 std::string name = "calibrated");

/// Produces measurements by sampling a ground-truth cost model with
/// log-normal-ish multiplicative noise of the given relative sigma —
/// the stand-in for running real warmup kernels.
[[nodiscard]] WarmupMeasurements simulate_measurements(const CostModel& ground_truth,
                                                       util::Rng& rng,
                                                       std::size_t repetitions = 8,
                                                       double noise = 0.03);

// ---- Real wall-clock hooks (threaded execution backend) -------------------
//
// The threaded backend in src/exec runs actual kernels and paces them to the
// cost model; these hooks are the measurement side of that bridge — they time
// caller-provided callables on the host with a monotonic clock, exactly the
// warmup measurements the paper's §IV-A takes on the real testbed.

/// Median wall-clock seconds of one call to `fn` over `repetitions` timed
/// runs (one untimed warmup call first; median rejects scheduler outliers).
/// `fn` must be callable repeatedly with no externally visible side effects.
[[nodiscard]] double time_callable(const std::function<void()>& fn,
                                   std::size_t repetitions = 9);

/// Time `kernel(tokens)` across `token_loads`, producing samples that plug
/// straight into WarmupMeasurements::cpu_warm / gpu_times and thus into
/// fit_machine_profile — a real-measurement replacement for
/// simulate_measurements on hosts where the kernels actually run.
[[nodiscard]] std::vector<ComputeSample> measure_compute_samples(
    const std::function<void(std::size_t)>& kernel,
    std::span<const std::size_t> token_loads, std::size_t repetitions = 9);

}  // namespace hybrimoe::hw
