#include "hw/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hybrimoe::hw {

Interval Timeline::schedule(double earliest, double duration, OpKind kind,
                            moe::ExpertId expert, std::uint32_t load) {
  HYBRIMOE_REQUIRE(duration >= 0.0, "cannot schedule a negative duration");
  HYBRIMOE_REQUIRE(earliest >= 0.0, "cannot schedule before time zero");
  Interval iv;
  iv.start = std::max(earliest, busy_until_);
  iv.end = iv.start + duration;
  iv.kind = kind;
  iv.expert = expert;
  iv.load = load;
  busy_until_ = iv.end;
  intervals_.push_back(iv);
  return iv;
}

double Timeline::busy_time() const noexcept {
  double total = 0.0;
  for (const auto& iv : intervals_) total += iv.duration();
  return total;
}

double Timeline::utilization(double horizon) const noexcept {
  if (horizon <= 0.0) return 0.0;
  return busy_time() / horizon;
}

double Timeline::idle_before(double horizon) const noexcept {
  if (horizon <= busy_until_) return 0.0;
  return horizon - busy_until_;
}

double TimelineSet::makespan() const noexcept {
  return std::max({cpu.busy_until(), gpu.busy_until(), pcie.busy_until()});
}

std::string render_gantt(const TimelineSet& timelines, std::size_t width) {
  const double horizon = timelines.makespan();
  std::ostringstream os;
  if (horizon <= 0.0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const double scale = static_cast<double>(width) / horizon;
  const Timeline* rows[] = {&timelines.gpu, &timelines.pcie, &timelines.cpu};
  for (const Timeline* row : rows) {
    std::string lane(width, '.');
    for (const auto& iv : row->intervals()) {
      auto begin = static_cast<std::size_t>(std::floor(iv.start * scale));
      auto end = static_cast<std::size_t>(std::ceil(iv.end * scale));
      begin = std::min(begin, width - 1);
      end = std::clamp(end, begin + 1, width);
      // Label the box with the expert letter/number; fill with op marker.
      const std::string label = iv.expert.to_string();
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t offset = i - begin;
        lane[i] = offset < label.size() ? label[offset] : '=';
      }
      if (end - begin >= 1) lane[end - 1] = '|';
    }
    os << to_string(row->resource()) << (row->resource() == Resource::Cpu ? "  " : "  ")
       << lane << '\n';
  }
  os << "      0" << std::string(width > 14 ? width - 14 : 0, ' ') << "t="
     << static_cast<double>(horizon) << "s\n";
  return os.str();
}

}  // namespace hybrimoe::hw
