#pragma once

/// \file topology.hpp
/// Hardware description types: per-device compute parameters, host-device
/// links, the historical one-CPU+one-GPU MachineProfile, and its
/// generalization — Topology — one host CPU plus N accelerator devices, each
/// with its own compute parameters, host link and share of the expert-cache
/// budget. A single-accelerator Topology is *exactly* a MachineProfile
/// (from_machine / primary_machine convert losslessly), and every scheduler
/// metric is bit-identical between the two representations — the equivalence
/// the preset tests pin down. Time queries over a (topology, model) pair
/// live in cost_model.hpp.

#include <cstddef>
#include <string>
#include <vector>

namespace hybrimoe::hw {

/// Sustained-throughput description of one compute device.
struct ComputeDeviceParams {
  double flops = 0.0;            ///< sustained FLOP/s at single-token GEMV
  double mem_bandwidth = 0.0;    ///< bytes/s streaming weights
  double launch_overhead = 0.0;  ///< fixed seconds per dispatched task
  double warmup_penalty = 0.0;   ///< extra seconds on the first task of a burst
  /// GEMM-regime throughput: batched multi-token matmuls amortise loads and
  /// reach far higher FLOP rates than GEMV. 0 disables the ramp (flat).
  double flops_peak = 0.0;
  /// Token count at which half the GEMV->GEMM headroom is reached.
  double flops_ramp_half = 4.0;

  /// Effective FLOP/s at a given batch size.
  [[nodiscard]] double effective_flops(std::size_t tokens) const noexcept {
    if (flops_peak <= flops) return flops;
    const auto t = static_cast<double>(tokens);
    return flops + (flops_peak - flops) * t / (t + flops_ramp_half);
  }

  /// Structural validity (positive throughputs, non-negative overheads).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return flops > 0.0 && mem_bandwidth > 0.0 && launch_overhead >= 0.0 &&
           warmup_penalty >= 0.0 && flops_peak >= 0.0 && flops_ramp_half > 0.0;
  }
};

/// A host-device interconnect.
struct TransferLinkParams {
  double bandwidth = 0.0;  ///< bytes/s
  double latency = 0.0;    ///< fixed seconds per transfer

  /// Structural validity (positive bandwidth, non-negative latency).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return bandwidth > 0.0 && latency >= 0.0;
  }
};

/// One machine = CPU + GPU + PCIe link: the single-pair view. Retained as
/// the convenient way to describe (and calibrate against) one-accelerator
/// systems; Topology::from_machine upgrades it losslessly.
struct MachineProfile {
  std::string name;
  ComputeDeviceParams cpu;
  ComputeDeviceParams gpu;
  TransferLinkParams pcie;

  /// Throws std::invalid_argument on invalid device/link parameters.
  void validate() const;

  /// The paper's testbed: RTX A6000 (PCIe 4.0 x16) + Xeon Gold 5220R capped
  /// at 10 cores. Throughputs are sustained figures for 4-bit kernels, not
  /// peak datasheet numbers.
  [[nodiscard]] static MachineProfile a6000_xeon10();
  /// A smaller edge box (laptop dGPU + 8-core mobile CPU) for scaling studies.
  [[nodiscard]] static MachineProfile laptop_edge();
  /// Unit-cost machine used by scheduler unit tests: CPU time == load units,
  /// GPU time == 1 per expert, transfer == 3 (the Fig. 5 worked example).
  [[nodiscard]] static MachineProfile unit_test_machine();
};

/// One accelerator of a Topology: its compute throughput, the host link that
/// feeds it, and its relative share of the expert-cache capacity budget.
struct AcceleratorProfile {
  std::string name;             ///< display name ("gpu0", "gpu1", ...)
  ComputeDeviceParams compute;  ///< device compute throughput
  TransferLinkParams link;      ///< host -> device interconnect
  /// Relative weight when the engine splits the total expert-cache capacity
  /// across accelerators (proportional split, remainder to low indices).
  double cache_share = 1.0;

  /// Throws std::invalid_argument on invalid parameters.
  void validate() const;
};

/// One machine = host CPU + N accelerators (N >= 1), each with a dedicated
/// host link. Accelerator 0 is the *primary* device — the "GPU" of the
/// historical CPU+GPU pair; sched::DeviceId{1} addresses it.
struct Topology {
  std::string name;
  ComputeDeviceParams cpu;
  std::vector<AcceleratorProfile> accelerators;

  /// Throws std::invalid_argument unless the CPU and every accelerator
  /// validate and at least one accelerator is present.
  void validate() const;

  /// Accelerator count N (>= 1 after validate()).
  [[nodiscard]] std::size_t num_accelerators() const noexcept {
    return accelerators.size();
  }

  /// Lossless upgrade of a CPU+GPU pair: one accelerator named "gpu0" with
  /// the machine's GPU params and PCIe link, cache_share 1.
  [[nodiscard]] static Topology from_machine(const MachineProfile& machine);

  /// The CPU + accelerator-0 pair as a MachineProfile — the single-device
  /// view legacy interfaces (calibration, Gantt rendering) consume.
  [[nodiscard]] MachineProfile primary_machine() const;

  /// `n` identical copies of the machine's accelerator, each with its own
  /// dedicated link (the multi-GPU simulation testbed). `n` must be in
  /// [1, 254] (DeviceId is one byte; 0 is the CPU).
  [[nodiscard]] static Topology replicated(const MachineProfile& machine, std::size_t n,
                                           std::string name = "");

  /// The paper's testbed as a 1-accelerator topology (the default).
  [[nodiscard]] static Topology a6000_xeon10();
  /// Two A6000-class GPUs on dedicated PCIe 4.0 x16 links, shared Xeon host.
  [[nodiscard]] static Topology dual_a6000();
  /// Four simulated mid-range GPUs (A6000 halved, x8 links) for scaling
  /// studies — aggregate compute of dual_a6000, twice the scheduling freedom.
  [[nodiscard]] static Topology quad_sim();

  /// Split a total expert-cache capacity across accelerators proportionally
  /// to cache_share (floor + remainder to the lowest-index devices), so the
  /// slot total is preserved exactly. Single-accelerator topologies get the
  /// whole budget on device 0 — bit-compatible with the pair model.
  [[nodiscard]] std::vector<std::size_t> split_cache_capacity(std::size_t total) const;
};

}  // namespace hybrimoe::hw
