#include "hw/topology.hpp"

#include <cmath>

#include "moe/model_config.hpp"
#include "util/assert.hpp"

namespace hybrimoe::hw {

void MachineProfile::validate() const {
  HYBRIMOE_REQUIRE(cpu.valid(), "cpu device parameters invalid");
  HYBRIMOE_REQUIRE(gpu.valid(), "gpu device parameters invalid");
  HYBRIMOE_REQUIRE(pcie.valid(), "pcie link parameters invalid");
}

MachineProfile MachineProfile::a6000_xeon10() {
  MachineProfile m;
  m.name = "A6000 + Xeon-5220R(10c)";
  // 10 cores of a 2.2 GHz Xeon on llama.cpp Q4 dequant-GEMM kernels: well
  // below AVX-512 peak, and ~35 GB/s of the shared DDR4 bandwidth.
  m.cpu = {.flops = 150e9, .mem_bandwidth = 35e9, .launch_overhead = 4e-6,
           .warmup_penalty = 80e-6, .flops_peak = 450e9, .flops_ramp_half = 4.0};
  // A6000: 38.7 TF fp32 peak, Marlin 4-bit GEMM sustains far above that on
  // tensor cores; memory 768 GB/s peak -> ~700 sustained.
  m.gpu = {.flops = 60e12, .mem_bandwidth = 700e9, .launch_overhead = 30e-6,
           .warmup_penalty = 0.0};
  // PCIe 4.0 x16: 32 GB/s raw, ~25 GB/s effective with pinned-memory DMA.
  m.pcie = {.bandwidth = 25e9, .latency = 15e-6};
  return m;
}

MachineProfile MachineProfile::laptop_edge() {
  MachineProfile m;
  m.name = "Laptop dGPU + 8c mobile CPU";
  m.cpu = {.flops = 120e9, .mem_bandwidth = 28e9, .launch_overhead = 5e-6,
           .warmup_penalty = 60e-6, .flops_peak = 300e9, .flops_ramp_half = 4.0};
  m.gpu = {.flops = 18e12, .mem_bandwidth = 270e9, .launch_overhead = 35e-6,
           .warmup_penalty = 0.0};
  m.pcie = {.bandwidth = 12e9, .latency = 20e-6};
  return m;
}

MachineProfile MachineProfile::unit_test_machine() {
  // Engineered so that, for a model whose routed expert has exactly 1 FLOP
  // per token-parameter unit... in practice tests pair this with
  // ModelConfig::tiny() and only rely on the ratios documented here:
  //   cpu_expert_time(load)  ~= load seconds (flop bound, no overheads)
  //   gpu_expert_time(load)  ~= 1 second     (bandwidth bound, flat)
  //   transfer_time()        ~= 3 seconds
  MachineProfile m;
  m.name = "unit-test";
  const moe::ModelConfig tiny = moe::ModelConfig::tiny();
  const double expert_flops_per_token = tiny.routed.flops(1);
  const auto expert_bytes = static_cast<double>(tiny.routed.bytes(4.25));
  m.cpu = {.flops = expert_flops_per_token, .mem_bandwidth = 1e18,
           .launch_overhead = 0.0, .warmup_penalty = 0.0};
  m.gpu = {.flops = 1e18, .mem_bandwidth = expert_bytes, .launch_overhead = 0.0,
           .warmup_penalty = 0.0};
  m.pcie = {.bandwidth = expert_bytes / 3.0, .latency = 0.0};
  return m;
}

void AcceleratorProfile::validate() const {
  HYBRIMOE_REQUIRE(compute.valid(), "accelerator compute parameters invalid");
  HYBRIMOE_REQUIRE(link.valid(), "accelerator link parameters invalid");
  HYBRIMOE_REQUIRE(cache_share >= 0.0 && std::isfinite(cache_share),
                   "accelerator cache_share must be finite and >= 0");
}

void Topology::validate() const {
  HYBRIMOE_REQUIRE(cpu.valid(), "cpu device parameters invalid");
  HYBRIMOE_REQUIRE(!accelerators.empty(), "a topology needs at least one accelerator");
  HYBRIMOE_REQUIRE(accelerators.size() <= 254,
                   "at most 254 accelerators (DeviceId is one byte, 0 is the CPU)");
  double share_sum = 0.0;
  for (const auto& accel : accelerators) {
    accel.validate();
    share_sum += accel.cache_share;
  }
  HYBRIMOE_REQUIRE(share_sum > 0.0, "at least one accelerator needs a cache share");
}

Topology Topology::from_machine(const MachineProfile& machine) {
  machine.validate();
  Topology t;
  t.name = machine.name;
  t.cpu = machine.cpu;
  t.accelerators.push_back({.name = "gpu0",
                            .compute = machine.gpu,
                            .link = machine.pcie,
                            .cache_share = 1.0});
  return t;
}

MachineProfile Topology::primary_machine() const {
  HYBRIMOE_REQUIRE(!accelerators.empty(), "topology has no accelerators");
  MachineProfile m;
  m.name = name;
  m.cpu = cpu;
  m.gpu = accelerators.front().compute;
  m.pcie = accelerators.front().link;
  return m;
}

Topology Topology::replicated(const MachineProfile& machine, std::size_t n,
                              std::string name) {
  HYBRIMOE_REQUIRE(n >= 1 && n <= 254, "replicated topology needs 1..254 accelerators");
  Topology t = from_machine(machine);
  t.name = name.empty() ? machine.name + " x" + std::to_string(n) : std::move(name);
  const AcceleratorProfile base = t.accelerators.front();
  t.accelerators.clear();
  for (std::size_t i = 0; i < n; ++i) {
    AcceleratorProfile accel = base;
    accel.name = "gpu" + std::to_string(i);
    t.accelerators.push_back(std::move(accel));
  }
  return t;
}

Topology Topology::a6000_xeon10() {
  return from_machine(MachineProfile::a6000_xeon10());
}

Topology Topology::dual_a6000() {
  return replicated(MachineProfile::a6000_xeon10(), 2, "2x A6000 + Xeon-5220R(10c)");
}

Topology Topology::quad_sim() {
  // Four mid-range devices: half an A6000's throughput each, on half-width
  // (x8) links — the aggregate compute matches dual_a6000 but with twice the
  // scheduling freedom, which is exactly what N-device policies must exploit.
  MachineProfile half = MachineProfile::a6000_xeon10();
  half.gpu.flops /= 2.0;
  half.gpu.mem_bandwidth /= 2.0;
  half.pcie.bandwidth /= 2.0;
  return replicated(half, 4, "4x sim-GPU (A6000/2, x8 links) + Xeon-5220R(10c)");
}

std::vector<std::size_t> Topology::split_cache_capacity(std::size_t total) const {
  validate();
  const std::size_t n = accelerators.size();
  std::vector<std::size_t> split(n, 0);
  if (n == 1) {
    split[0] = total;
    return split;
  }
  double share_sum = 0.0;
  for (const auto& accel : accelerators) share_sum += accel.cache_share;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    split[i] = static_cast<std::size_t>(std::floor(
        static_cast<double>(total) * accelerators[i].cache_share / share_sum));
    assigned += split[i];
  }
  // Largest-remainder would need another sort; the deterministic low-index
  // preference is enough — shares are coarse policy weights, not quotas.
  for (std::size_t i = 0; assigned < total; i = (i + 1) % n) {
    if (accelerators[i].cache_share > 0.0) {
      ++split[i];
      ++assigned;
    }
  }
  return split;
}

}  // namespace hybrimoe::hw
