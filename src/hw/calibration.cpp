#include "hw/calibration.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace hybrimoe::hw {

namespace {

/// Median of a copied span (robust against a few noisy outliers).
double median_of(std::span<const double> xs) {
  HYBRIMOE_REQUIRE(!xs.empty(), "median of empty span");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

}  // namespace

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  HYBRIMOE_REQUIRE(xs.size() == ys.size(), "fit_linear requires equal-length series");
  HYBRIMOE_REQUIRE(xs.size() >= 2, "fit_linear requires at least two samples");
  const double mx = util::mean(xs);
  const double my = util::mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  HYBRIMOE_REQUIRE(sxx > 0.0, "fit_linear requires varying x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

MachineProfile fit_machine_profile(const WarmupMeasurements& samples,
                                   const moe::ModelConfig& model, std::string name) {
  HYBRIMOE_REQUIRE(samples.cpu_warm.size() >= 2, "need >=2 warm CPU samples");
  HYBRIMOE_REQUIRE(!samples.gpu_times.empty(), "need GPU samples");
  HYBRIMOE_REQUIRE(samples.transfers.size() >= 2, "need >=2 transfer samples");

  MachineProfile fit;
  fit.name = std::move(name);
  const double flops_per_token = model.routed.flops(1);
  const auto expert_bytes = static_cast<double>(model.routed_expert_bytes());

  // --- CPU: the FLOP-bound region is linear in tokens; the token=1 sample
  // sits in the bandwidth-bound region.
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& s : samples.cpu_warm) {
      if (s.tokens >= 2) {  // linear region only
        xs.push_back(static_cast<double>(s.tokens));
        ys.push_back(s.seconds);
      }
    }
    HYBRIMOE_REQUIRE(xs.size() >= 2, "need >=2 multi-token CPU samples");
    const LinearFit line = fit_linear(xs, ys);
    HYBRIMOE_REQUIRE(line.slope > 0.0, "CPU timing must grow with load");
    fit.cpu.flops = flops_per_token / line.slope;

    const double launch = samples.cpu_empty_task.empty()
                              ? 0.0
                              : median_of(samples.cpu_empty_task);
    fit.cpu.launch_overhead = launch;

    std::vector<double> single_token;
    for (const auto& s : samples.cpu_warm)
      if (s.tokens == 1) single_token.push_back(s.seconds);
    // bandwidth-bound time = t(1) - launch, but never below the FLOP bound.
    double mem_time = single_token.empty() ? line.intercept
                                           : median_of(single_token) - launch;
    mem_time = std::max(mem_time, flops_per_token / fit.cpu.flops);
    fit.cpu.mem_bandwidth = expert_bytes / mem_time;

    fit.cpu.warmup_penalty = samples.cpu_first_extra.empty()
                                 ? 0.0
                                 : std::max(0.0, median_of(samples.cpu_first_extra));
  }

  // --- GPU: per-expert time is flat (launch + weight streaming) until very
  // large loads; fit the flat part as launch + bytes/bw and the growth (if
  // any) as the FLOP term.
  {
    const double launch = samples.gpu_empty_task.empty()
                              ? 0.0
                              : median_of(samples.gpu_empty_task);
    fit.gpu.launch_overhead = launch;

    std::vector<double> small_loads;
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& s : samples.gpu_times) {
      if (s.tokens <= 8) small_loads.push_back(s.seconds);
      xs.push_back(static_cast<double>(s.tokens));
      ys.push_back(s.seconds);
    }
    HYBRIMOE_REQUIRE(!small_loads.empty(), "need small-load GPU samples");
    const double flat = median_of(small_loads) - launch;
    HYBRIMOE_REQUIRE(flat > 0.0, "GPU flat time must be positive");
    fit.gpu.mem_bandwidth = expert_bytes / flat;

    // FLOP throughput from the largest-load sample once it exceeds the flat
    // region; fall back to a huge value when the sweep never leaves it.
    fit.gpu.flops = 1e18;
    const auto biggest = std::max_element(
        samples.gpu_times.begin(), samples.gpu_times.end(),
        [](const ComputeSample& a, const ComputeSample& b) { return a.tokens < b.tokens; });
    const double big_time = biggest->seconds - launch;
    if (big_time > flat * 1.05) {
      fit.gpu.flops = flops_per_token * static_cast<double>(biggest->tokens) / big_time;
    }
    fit.gpu.warmup_penalty = 0.0;
  }

  // --- PCIe: straight line over bytes.
  {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& s : samples.transfers) {
      xs.push_back(s.bytes);
      ys.push_back(s.seconds);
    }
    const LinearFit line = fit_linear(xs, ys);
    HYBRIMOE_REQUIRE(line.slope > 0.0, "transfer timing must grow with bytes");
    fit.pcie.bandwidth = 1.0 / line.slope;
    fit.pcie.latency = std::max(0.0, line.intercept);
  }

  fit.validate();
  return fit;
}

WarmupMeasurements simulate_measurements(const CostModel& ground_truth, util::Rng& rng,
                                         std::size_t repetitions, double noise) {
  HYBRIMOE_REQUIRE(repetitions > 0, "repetitions must be positive");
  HYBRIMOE_REQUIRE(noise >= 0.0 && noise < 0.5, "noise out of range");
  auto jitter = [&](double t) { return t * std::exp(rng.gaussian(0.0, noise)); };

  WarmupMeasurements m;
  const auto& machine = ground_truth.machine();
  const auto expert_bytes =
      static_cast<double>(ground_truth.model().routed_expert_bytes());

  const std::size_t token_sweep[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (const std::size_t tokens : token_sweep) {
      m.cpu_warm.push_back({tokens, jitter(ground_truth.cpu_expert_time(tokens, true))});
      m.gpu_times.push_back({tokens, jitter(ground_truth.gpu_expert_time(tokens))});
    }
    m.cpu_first_extra.push_back(jitter(machine.cpu.warmup_penalty));
    m.cpu_empty_task.push_back(jitter(machine.cpu.launch_overhead));
    m.gpu_empty_task.push_back(jitter(machine.gpu.launch_overhead));
    // Sweep transfer sizes around the expert size to expose the latency term.
    for (const double frac : {0.25, 0.5, 1.0, 2.0}) {
      const double bytes = expert_bytes * frac;
      m.transfers.push_back(
          {bytes, jitter(machine.pcie.latency + bytes / machine.pcie.bandwidth)});
    }
  }
  return m;
}

double time_callable(const std::function<void()>& fn, std::size_t repetitions) {
  HYBRIMOE_REQUIRE(static_cast<bool>(fn), "time_callable requires a callable");
  HYBRIMOE_REQUIRE(repetitions > 0, "repetitions must be positive");
  using Clock = std::chrono::steady_clock;
  fn();  // warmup: first call pays cold caches / lazy allocation
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    const auto t0 = Clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  return samples[samples.size() / 2];
}

std::vector<ComputeSample> measure_compute_samples(
    const std::function<void(std::size_t)>& kernel,
    std::span<const std::size_t> token_loads, std::size_t repetitions) {
  HYBRIMOE_REQUIRE(static_cast<bool>(kernel), "measure_compute_samples requires a kernel");
  std::vector<ComputeSample> samples;
  samples.reserve(token_loads.size());
  for (const std::size_t tokens : token_loads) {
    HYBRIMOE_REQUIRE(tokens > 0, "token loads must be positive");
    samples.push_back(
        {tokens, time_callable([&kernel, tokens] { kernel(tokens); }, repetitions)});
  }
  return samples;
}

}  // namespace hybrimoe::hw
