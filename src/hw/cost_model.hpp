#pragma once

/// \file cost_model.hpp
/// Analytical CPU/accelerator/link cost model — the substitute for the
/// paper's RTX A6000 + Xeon Gold 5220R testbed, generalized over an
/// hw::Topology of one CPU plus N accelerator devices.
///
/// Every scheduling decision in the paper consumes only three quantities:
/// per-expert compute time on each device and per-expert transfer time over
/// each link. The model reproduces the regimes the paper measures in
/// Fig. 3(e)/(f):
///
///  * device compute time = launch overhead + max(FLOP-bound, bandwidth-bound)
///    — so GPU per-expert time is essentially flat in token load (overhead /
///    weight-streaming dominated) while CPU time grows linearly once the
///    FLOP term dominates;
///  * the first CPU task of a layer pays a warmup penalty (cold caches),
///    matching the "first expert computation on the CPU is slower"
///    observation;
///  * link transfer time = latency + bytes / bandwidth, constant per expert.
///
/// Accelerator-indexed overloads (`gpu_expert_time(tokens, accel)`,
/// `transfer_time(accel)`) address devices by topology index; the index-free
/// forms query accelerator 0 — on a single-accelerator topology they are the
/// historical CPU+GPU-pair model, bit for bit.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.hpp"
#include "moe/model_config.hpp"

namespace hybrimoe::hw {

/// Time queries for one (topology, model) pair.
class CostModel {
 public:
  /// Single-accelerator convenience: the historical CPU+GPU pair
  /// (equivalent to CostModel(Topology::from_machine(machine), model)).
  CostModel(MachineProfile machine, moe::ModelConfig model);
  /// Full N-accelerator model; `topology` must validate.
  CostModel(Topology topology, moe::ModelConfig model);

  /// The CPU + primary-accelerator pair view (accelerator 0).
  [[nodiscard]] const MachineProfile& machine() const noexcept { return machine_; }
  /// The full device/link complement this model answers queries for.
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  /// Accelerator count N of the topology (>= 1).
  [[nodiscard]] std::size_t num_accelerators() const noexcept {
    return topology_.accelerators.size();
  }
  /// The model whose expert shapes are being charged.
  [[nodiscard]] const moe::ModelConfig& model() const noexcept { return model_; }

  /// Generic device compute time for a task of `flops` floating ops touching
  /// `bytes` of weights at batch size `tokens` (drives the GEMM ramp).
  [[nodiscard]] double compute_time(const ComputeDeviceParams& dev, double flops,
                                    double bytes, std::size_t tokens,
                                    bool warm = true) const noexcept;

  /// One routed expert on the CPU with `tokens` tokens. `warm` is false for
  /// the first expert task of a layer burst.
  [[nodiscard]] double cpu_expert_time(std::size_t tokens, bool warm = true) const;
  /// One routed expert on the primary accelerator (index 0).
  [[nodiscard]] double gpu_expert_time(std::size_t tokens) const;
  /// One routed expert on accelerator `accel` (topology index < N).
  [[nodiscard]] double gpu_expert_time(std::size_t tokens, std::size_t accel) const;
  /// Moving one routed expert's weights over the primary link (index 0).
  [[nodiscard]] double transfer_time() const noexcept;
  /// Moving one routed expert's weights over accelerator `accel`'s link.
  [[nodiscard]] double transfer_time(std::size_t accel) const;

  /// All shared experts of one layer on the primary accelerator (they are
  /// pinned residents of the dense pipeline).
  [[nodiscard]] double shared_experts_time(std::size_t tokens) const;
  /// Attention + norms of one layer on the primary accelerator.
  [[nodiscard]] double attention_time(std::size_t tokens) const;
  /// Fixed per-layer framework overhead (kernel dispatch, python glue, ...).
  [[nodiscard]] double layer_overhead() const noexcept { return layer_overhead_; }
  /// Set the fixed per-layer framework overhead in seconds.
  void set_layer_overhead(double seconds) noexcept { layer_overhead_ = seconds; }

  // -- Fault injection (scenario layer) -----------------------------------
  // Runtime device/link health. The default state (every device available,
  // every link at scale 1.0) is bit-identical to the pre-fault model: the
  // availability flag is only consulted by schedulers that ask, and a link
  // scale of exactly 1.0 multiplies bandwidth by 1.0.

  /// Whether accelerator `accel` is currently reachable.
  [[nodiscard]] bool accelerator_available(std::size_t accel) const;
  /// Mark accelerator `accel` lost (false) or recovered (true). Accelerator
  /// 0 hosts the dense pipeline and cannot be lost; losing a lost device or
  /// recovering an available device throws std::invalid_argument.
  void set_accelerator_available(std::size_t accel, bool available);
  /// Current bandwidth multiplier on accelerator `accel`'s link.
  [[nodiscard]] double link_bandwidth_scale(std::size_t accel) const;
  /// Scale accelerator `accel`'s link bandwidth (straggler injection).
  /// `scale` must be positive; 1.0 restores the healthy link.
  void set_link_bandwidth_scale(std::size_t accel, double scale);

 private:
  Topology topology_;
  MachineProfile machine_;  ///< primary pair view, kept for legacy interfaces
  moe::ModelConfig model_;
  double layer_overhead_ = 0.0;
  std::vector<std::uint8_t> accel_available_;  ///< per-accelerator health
  std::vector<double> link_scale_;             ///< per-link bandwidth multiplier
};

}  // namespace hybrimoe::hw
