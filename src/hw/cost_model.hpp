#pragma once

/// \file cost_model.hpp
/// Analytical CPU/GPU/PCIe cost model — the substitute for the paper's
/// RTX A6000 + Xeon Gold 5220R testbed.
///
/// Every scheduling decision in the paper consumes only three quantities:
/// per-expert compute time on each device and per-expert transfer time. The
/// model reproduces the regimes the paper measures in Fig. 3(e)/(f):
///
///  * device compute time = launch overhead + max(FLOP-bound, bandwidth-bound)
///    — so GPU per-expert time is essentially flat in token load (overhead /
///    weight-streaming dominated) while CPU time grows linearly once the
///    FLOP term dominates;
///  * the first CPU task of a layer pays a warmup penalty (cold caches),
///    matching the "first expert computation on the CPU is slower"
///    observation;
///  * PCIe transfer time = latency + bytes / bandwidth, constant per expert.

#include <cstddef>
#include <string>

#include "moe/model_config.hpp"

namespace hybrimoe::hw {

/// Sustained-throughput description of one compute device.
struct ComputeDeviceParams {
  double flops = 0.0;            ///< sustained FLOP/s at single-token GEMV
  double mem_bandwidth = 0.0;    ///< bytes/s streaming weights
  double launch_overhead = 0.0;  ///< fixed seconds per dispatched task
  double warmup_penalty = 0.0;   ///< extra seconds on the first task of a burst
  /// GEMM-regime throughput: batched multi-token matmuls amortise loads and
  /// reach far higher FLOP rates than GEMV. 0 disables the ramp (flat).
  double flops_peak = 0.0;
  /// Token count at which half the GEMV->GEMM headroom is reached.
  double flops_ramp_half = 4.0;

  /// Effective FLOP/s at a given batch size.
  [[nodiscard]] double effective_flops(std::size_t tokens) const noexcept {
    if (flops_peak <= flops) return flops;
    const auto t = static_cast<double>(tokens);
    return flops + (flops_peak - flops) * t / (t + flops_ramp_half);
  }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return flops > 0.0 && mem_bandwidth > 0.0 && launch_overhead >= 0.0 &&
           warmup_penalty >= 0.0 && flops_peak >= 0.0 && flops_ramp_half > 0.0;
  }
};

/// A host-device interconnect.
struct TransferLinkParams {
  double bandwidth = 0.0;  ///< bytes/s
  double latency = 0.0;    ///< fixed seconds per transfer

  [[nodiscard]] constexpr bool valid() const noexcept {
    return bandwidth > 0.0 && latency >= 0.0;
  }
};

/// One machine = CPU + GPU + PCIe link.
struct MachineProfile {
  std::string name;
  ComputeDeviceParams cpu;
  ComputeDeviceParams gpu;
  TransferLinkParams pcie;

  void validate() const;

  /// The paper's testbed: RTX A6000 (PCIe 4.0 x16) + Xeon Gold 5220R capped
  /// at 10 cores. Throughputs are sustained figures for 4-bit kernels, not
  /// peak datasheet numbers.
  [[nodiscard]] static MachineProfile a6000_xeon10();
  /// A smaller edge box (laptop dGPU + 8-core mobile CPU) for scaling studies.
  [[nodiscard]] static MachineProfile laptop_edge();
  /// Unit-cost machine used by scheduler unit tests: CPU time == load units,
  /// GPU time == 1 per expert, transfer == 3 (the Fig. 5 worked example).
  [[nodiscard]] static MachineProfile unit_test_machine();
};

/// Time queries for one (machine, model) pair.
class CostModel {
 public:
  CostModel(MachineProfile machine, moe::ModelConfig model);

  [[nodiscard]] const MachineProfile& machine() const noexcept { return machine_; }
  [[nodiscard]] const moe::ModelConfig& model() const noexcept { return model_; }

  /// Generic device compute time for a task of `flops` floating ops touching
  /// `bytes` of weights at batch size `tokens` (drives the GEMM ramp).
  [[nodiscard]] double compute_time(const ComputeDeviceParams& dev, double flops,
                                    double bytes, std::size_t tokens,
                                    bool warm = true) const noexcept;

  /// One routed expert on the CPU with `tokens` tokens. `warm` is false for
  /// the first expert task of a layer burst.
  [[nodiscard]] double cpu_expert_time(std::size_t tokens, bool warm = true) const;
  /// One routed expert on the GPU with `tokens` tokens.
  [[nodiscard]] double gpu_expert_time(std::size_t tokens) const;
  /// Moving one routed expert's weights across PCIe.
  [[nodiscard]] double transfer_time() const noexcept;

  /// All shared experts of one layer on the GPU (they are pinned residents).
  [[nodiscard]] double shared_experts_time(std::size_t tokens) const;
  /// Attention + norms of one layer on the GPU.
  [[nodiscard]] double attention_time(std::size_t tokens) const;
  /// Fixed per-layer framework overhead (kernel dispatch, python glue, ...).
  [[nodiscard]] double layer_overhead() const noexcept { return layer_overhead_; }
  void set_layer_overhead(double seconds) noexcept { layer_overhead_ = seconds; }

 private:
  MachineProfile machine_;
  moe::ModelConfig model_;
  double layer_overhead_ = 0.0;
};

}  // namespace hybrimoe::hw
