#include "trace/recorder.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/engine.hpp"
#include "util/json_writer.hpp"

namespace hybrimoe::trace {

Recorder::Recorder(RecorderConfig config) : config_(std::move(config)) {
  if (config_.sink == nullptr) return;
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("kind").string("header");
  line.field("schema").string(kSchemaName);
  line.field("version").number(kSchemaVersion);
  line.field("stack").string(config_.stack);
  line.field("model").string(config_.model);
  line.field("seed").number(config_.seed);
  line.field("devices").number(config_.devices);
  line.close();
  config_.sink->write(os.str());
}

void Recorder::before_step(std::size_t step_index, double clock,
                           runtime::OffloadEngine& engine) {
  (void)step_index, (void)clock;
  if (engine_ == &engine) return;
  // First sight of the engine: baseline its cumulative cache counters so
  // per-step deltas start at this run, not at whatever warmup left behind.
  engine_ = &engine;
  prev_device_cache_.assign(engine.num_devices(), {});
  for (std::size_t a = 0; a < engine.num_devices(); ++a)
    prev_device_cache_[a] = engine.device_cache(a).stats();
}

void Recorder::after_step(const runtime::StepInfo& info,
                          const runtime::StageMetrics& steps) {
  StepRecord r;
  r.index = info.index;
  r.start_clock = info.start_clock;
  r.end_clock = info.end_clock;
  r.latency = info.latency;
  r.stage = info.stage;
  r.prefill_tokens = info.prefill_tokens;
  r.decode_tokens = info.decode_tokens;
  r.active_requests = info.active_requests;
  r.waiting_requests = info.waiting_requests;
  r.waiting_by_tier = info.waiting_by_tier;
  r.rejected_total = info.rejected_total;
  r.preemptions_total = info.preemptions_total;
  r.kv_used_bytes = info.kv_used_bytes;
  r.kv_peak_bytes = info.kv_peak_bytes;
  r.kv_evictions_total = info.kv_evictions_total;

  // Device complement: the engine's counters are authoritative; the cost
  // model covers hook configurations that observe before any step ran.
  std::size_t n = steps.device_transfers.size();
  if (n == 0 && config_.costs != nullptr) n = config_.costs->num_accelerators();
  prev_transfers_.resize(n, 0);
  r.transfers_to_device.resize(n, 0);
  r.transferred_bytes.resize(n, 0.0);
  r.link_busy_s.resize(n, 0.0);
  r.device_available.resize(n, 1);
  r.link_scale.resize(n, 1.0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t cumulative =
        a < steps.device_transfers.size() ? steps.device_transfers[a] : 0;
    r.transfers_to_device[a] = cumulative - prev_transfers_[a];
    prev_transfers_[a] = cumulative;
    const double moved = static_cast<double>(r.transfers_to_device[a]);
    r.transferred_bytes[a] = moved * config_.expert_bytes;
    if (config_.costs != nullptr && a < config_.costs->num_accelerators()) {
      r.device_available[a] = config_.costs->accelerator_available(a) ? 1 : 0;
      r.link_scale[a] = config_.costs->link_bandwidth_scale(a);
      if (config_.costs->accelerator_available(a))
        r.link_busy_s[a] = moved * config_.costs->transfer_time(a);
    }
  }

  r.transfers = steps.transfers - prev_ondemand_;
  r.prefetches = steps.prefetches - prev_prefetch_;
  r.maintenance = steps.maintenance - prev_maintenance_;
  prev_ondemand_ = steps.transfers;
  prev_prefetch_ = steps.prefetches;
  prev_maintenance_ = steps.maintenance;

  r.cpu_busy_s = steps.cpu_busy - prev_cpu_;
  r.gpu_busy_s = steps.gpu_busy - prev_gpu_;
  r.pcie_busy_s = steps.pcie_busy - prev_pcie_;
  prev_cpu_ = steps.cpu_busy;
  prev_gpu_ = steps.gpu_busy;
  prev_pcie_ = steps.pcie_busy;

  // Cache counters live in the device caches (the engine merges them into
  // the run metrics only at the end); transient prefill-buffer hits are the
  // one part the serving core accumulates directly.
  if (engine_ != nullptr) {
    const std::size_t devices = engine_->num_devices();
    r.device_cache_hits.resize(devices, 0);
    r.device_cache_misses.resize(devices, 0);
    r.device_cache_evictions.resize(devices, 0);
    if (prev_device_cache_.size() < devices) prev_device_cache_.resize(devices);
    for (std::size_t a = 0; a < devices; ++a) {
      const cache::CacheStats now = engine_->device_cache(a).stats();
      const cache::CacheStats& prev = prev_device_cache_[a];
      r.device_cache_hits[a] = now.hits - prev.hits;
      r.device_cache_misses[a] = now.misses - prev.misses;
      r.device_cache_evictions[a] = now.evictions - prev.evictions;
      r.cache_hits += now.hits - prev.hits;
      r.cache_misses += now.misses - prev.misses;
      r.cache_insertions += now.insertions - prev.insertions;
      r.cache_evictions += now.evictions - prev.evictions;
      prev_device_cache_[a] = now;
    }
  }
  r.cache_hits += steps.cache.hits - prev_transient_hits_;
  prev_transient_hits_ = steps.cache.hits;

  timeline_.push_back(r);
  if (config_.sink != nullptr) emit_step(r);
}

void Recorder::on_sim_event(const serve_sim::Event& event) {
  events_.push_back(event);
  if (config_.sink == nullptr) return;
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("kind").string("event");
  line.field("t_s").exact(event.time);
  line.field("seq").number(event.seq);
  line.field("type").string(serve_sim::to_string(event.kind));
  line.field("request").number(event.request);
  line.field("payload").number(event.payload);
  line.close();
  config_.sink->write(os.str());
}

void Recorder::emit_step(const StepRecord& r) {
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("kind").string("step");
  line.field("index").number(r.index);
  line.field("start_s").exact(r.start_clock);
  line.field("end_s").exact(r.end_clock);
  line.field("latency_s").exact(r.latency);
  line.field("stage").string(sched::to_string(r.stage));
  line.field("prefill_tokens").number(r.prefill_tokens);
  line.field("decode_tokens").number(r.decode_tokens);
  line.field("active_requests").number(r.active_requests);
  line.field("waiting_requests").number(r.waiting_requests);
  line.field("waiting_by_tier").count_list(r.waiting_by_tier);
  line.field("transfers").number(r.transfers);
  line.field("prefetches").number(r.prefetches);
  line.field("maintenance").number(r.maintenance);
  line.field("transfers_to_device").count_list(r.transfers_to_device);
  line.field("transferred_bytes").exact_list(r.transferred_bytes);
  line.field("link_busy_s").exact_list(r.link_busy_s);
  line.field("device_available").count_list(r.device_available);
  line.field("link_scale").exact_list(r.link_scale);
  line.field("cache_hits").number(r.cache_hits);
  line.field("cache_misses").number(r.cache_misses);
  line.field("cache_insertions").number(r.cache_insertions);
  line.field("cache_evictions").number(r.cache_evictions);
  line.field("device_cache_hits").count_list(r.device_cache_hits);
  line.field("device_cache_misses").count_list(r.device_cache_misses);
  line.field("device_cache_evictions").count_list(r.device_cache_evictions);
  line.field("cpu_busy_s").exact(r.cpu_busy_s);
  line.field("gpu_busy_s").exact(r.gpu_busy_s);
  line.field("pcie_busy_s").exact(r.pcie_busy_s);
  line.field("rejected_total").number(r.rejected_total);
  line.field("preemptions_total").number(r.preemptions_total);
  line.field("kv_used_bytes").exact(r.kv_used_bytes);
  line.field("kv_peak_bytes").exact(r.kv_peak_bytes);
  line.field("kv_evictions_total").number(r.kv_evictions_total);
  line.close();
  config_.sink->write(os.str());
}

void Recorder::write_summary(const runtime::ServeMetrics& metrics) {
  if (config_.sink == nullptr) return;
  std::ostringstream os;
  util::JsonWriter::Inline line(os);
  line.field("kind").string("summary");
  line.field("steps").number(timeline_.size());
  line.field("events").number(events_.size());
  line.field("makespan_s").exact(metrics.makespan);
  line.field("finished").number(metrics.finished_count());
  line.field("rejected").number(metrics.rejected_count());
  line.field("output_tokens").number(metrics.total_generated_tokens());
  line.field("throughput_tok_s").exact(metrics.throughput());
  line.field("cache_hit_rate").exact(metrics.steps.cache.hit_rate());
  line.close();
  config_.sink->write(os.str());
}

}  // namespace hybrimoe::trace
