#pragma once

/// \file recorder.hpp
/// The trace::Recorder — a runtime::StepHook that turns the serving core's
/// cumulative counters into per-step StepRecords and (optionally) streams
/// them as JSONL through a TraceSink. One Recorder observes one run: it
/// keeps the in-memory timeline the scenario invariant checkers consume and,
/// when a sink is attached, writes the header line at construction, a `step`
/// line per completed step, an `event` line per discrete-event pop and — via
/// write_summary — a trailing `summary` line.
///
/// The Recorder is an observer: it never mutates the engine, the cost model
/// or the step's routing, so a run with a Recorder installed produces
/// value-identical metrics to the same run without one (installing any hook
/// does switch the serving core off its single-part fast path, which copies
/// the merged trace but does not change results). ScenarioDriver composes
/// with it by delegation: fault injection stays in the driver, recording
/// lives here.

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "runtime/serve_engine.hpp"
#include "serve_sim/event.hpp"
#include "trace/schema.hpp"
#include "trace/sink.hpp"

namespace hybrimoe::trace {

/// Recorder wiring: everything optional — a default-constructed config
/// records an in-memory timeline only.
struct RecorderConfig {
  /// Cost model to snapshot device health / link scale / per-expert link
  /// time from (e.g. &harness.costs()); null = devices assumed healthy.
  const hw::CostModel* costs = nullptr;
  /// Per-expert routed weight bytes (moe::ModelConfig::routed_expert_bytes)
  /// for the transferred-bytes accounting; 0 = bytes reported as 0.
  double expert_bytes = 0.0;
  /// JSONL destination; null = in-memory timeline only.
  TraceSink* sink = nullptr;
  std::string stack;       ///< header: stack display name
  std::string model;       ///< header: model name
  std::uint64_t seed = 0;  ///< header: stream/trace seed
  std::size_t devices = 0;  ///< header: accelerator count (0 = unknown)
};

/// Observation-only StepHook that records the shared trace stream.
class Recorder final : public runtime::StepHook {
 public:
  /// \brief Bind the recorder to its config; writes the header line if a
  /// sink is attached. Everything the config points at must outlive the
  /// recorder.
  explicit Recorder(RecorderConfig config = {});

  /// Per-step timeline recorded so far (one entry per completed step).
  [[nodiscard]] const std::vector<StepRecord>& timeline() const noexcept {
    return timeline_;
  }
  /// Raw simulation events recorded so far, in (time, seq) pop order.
  [[nodiscard]] const std::vector<serve_sim::Event>& events() const noexcept {
    return events_;
  }

  /// \brief Remember the engine so after_step can read its cache counters.
  void before_step(std::size_t step_index, double clock,
                   runtime::OffloadEngine& engine) override;
  /// \brief Roll the cumulative counters into a StepRecord; emit its line.
  void after_step(const runtime::StepInfo& info,
                  const runtime::StageMetrics& steps) override;
  /// \brief Record the popped event; emit its line.
  void on_sim_event(const serve_sim::Event& event) override;

  /// \brief Emit the trailing `summary` line (no-op without a sink; the
  /// in-memory timeline needs no closing record). Call after the run.
  void write_summary(const runtime::ServeMetrics& metrics);

 private:
  void emit_step(const StepRecord& r);

  RecorderConfig config_;
  runtime::OffloadEngine* engine_ = nullptr;  ///< captured in before_step
  std::vector<StepRecord> timeline_;
  std::vector<serve_sim::Event> events_;
  // Cumulative-counter snapshots as of the previous step, for deltas.
  std::vector<std::size_t> prev_transfers_;
  std::vector<cache::CacheStats> prev_device_cache_;
  std::size_t prev_transient_hits_ = 0;
  std::size_t prev_ondemand_ = 0, prev_prefetch_ = 0, prev_maintenance_ = 0;
  double prev_cpu_ = 0.0, prev_gpu_ = 0.0, prev_pcie_ = 0.0;
};

}  // namespace hybrimoe::trace
