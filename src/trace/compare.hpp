#pragma once

/// \file compare.hpp
/// Artifact alignment and regression thresholds — the library behind
/// tools/hybrimoe_compare. Two artifact shapes are understood:
///
///  * a JSONL trace (schema.hpp): header/step/event/summary lines. Steps
///    flatten to `step[<index>].<field>` metrics (array fields additionally
///    indexed), events to per-type counts, the summary to `summary.<field>`;
///  * a bench / CLI JSON object (load_sweep, hybrimoe_run --json, ...):
///    every numeric or boolean leaf flattens to its dotted path, with array
///    elements indexed (`points[3].rate`).
///
/// compare() aligns two artifacts by metric name and applies a per-metric
/// threshold: a delta is a violation when |candidate - baseline| exceeds
/// abs + rel * max(|baseline|, |candidate|); metrics present on only one
/// side are violations outright. Thresholds are keyed by the metric's *leaf*
/// name (`latency_s` matches every `step[i].latency_s`), with a default rule
/// of exact equality — regression gates opt metrics *into* slack, never out
/// of scrutiny.
///
/// Comparing two traces with different schema versions aborts the process:
/// cross-version field meanings differ, so any delta the comparator could
/// report would be fabricated. Malformed artifacts raise
/// std::invalid_argument with a position-stamped message instead.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hybrimoe::trace {

/// One flattened numeric observation.
struct Metric {
  std::string name;
  double value = 0.0;
};

/// A parsed artifact: its shape plus the flat metric list (insertion order).
struct Artifact {
  /// Trace = JSONL stream with a header line; Bench = one JSON object.
  enum class Kind { Trace, Bench };
  Kind kind = Kind::Bench;
  std::string schema;          ///< trace header schema name ("" for bench)
  std::uint32_t version = 0;   ///< trace header schema version (0 for bench)
  std::vector<Metric> metrics;
};

/// Tolerance rule: violation when |delta| > abs + rel * max(|a|, |b|).
struct Threshold {
  double abs = 0.0;
  double rel = 0.0;
};

/// Threshold table: per-leaf-name rules over a default of exact equality.
struct Thresholds {
  Threshold fallback{};
  std::vector<std::pair<std::string, Threshold>> by_metric;

  /// \brief The rule for a metric, matched by its leaf name (the segment
  /// after the last '.', array suffix stripped).
  [[nodiscard]] const Threshold& lookup(std::string_view metric) const;
};

/// \brief Parse a thresholds file ({"default": {...}, "metrics": {...}}).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Thresholds parse_thresholds(std::string_view text);

/// \brief Parse an artifact, autodetecting trace JSONL (first line is a
/// `header` record) vs a single bench JSON object. `label` names the input
/// in error messages. Throws std::invalid_argument on malformed input.
[[nodiscard]] Artifact parse_artifact(std::string_view text, const char* label);

/// One aligned metric's comparison outcome.
struct Delta {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta = 0.0;   ///< candidate - baseline
  double limit = 0.0;   ///< the threshold this delta was judged against
  bool violated = false;
};

/// The comparator's verdict over two artifacts.
struct CompareReport {
  std::vector<Delta> deltas;          ///< every aligned metric, input order
  std::vector<std::string> missing;   ///< metrics present on only one side
  std::size_t violations = 0;         ///< violated deltas (missing excluded)

  /// \brief True when nothing violated and nothing was missing.
  [[nodiscard]] bool ok() const noexcept {
    return violations == 0 && missing.empty();
  }
};

/// \brief Align two artifacts by metric name and judge every delta against
/// the thresholds. Aborts the process (after a diagnostic on stderr) when
/// both artifacts are traces of different schema name or version.
[[nodiscard]] CompareReport compare(const Artifact& baseline,
                                    const Artifact& candidate,
                                    const Thresholds& thresholds);

}  // namespace hybrimoe::trace
