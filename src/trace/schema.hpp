#pragma once

/// \file schema.hpp
/// The versioned per-step trace schema. A trace is a JSONL stream: one
/// header line (schema name + version + run identity), one `step` line per
/// composed serving step, one `event` line per discrete-event pop, and an
/// optional trailing `summary` line. Field order is fixed and doubles are
/// printed in shortest exact round-trip form, so a fixed-seed run emits a
/// byte-identical trace every time — the determinism CI gate byte-diffs two
/// fresh traces of the same smoke run.
///
/// StepRecord is the in-memory form of a `step` line. It is a superset of
/// the timeline the scenario invariant checkers historically consumed (the
/// old scenario::StepRecord struct is now an alias of this one): clocks and
/// token counts from runtime::StepInfo, per-device transfer/health/link
/// state, per-device cache counter deltas, busy-time deltas and serving
/// state (queue depths per tier, admission rejections, preemptions, KV
/// pressure). Delta fields cover exactly one step; `*_total` fields are
/// cumulative over the run up to and including the step.
///
/// Bump kSchemaVersion whenever a field is added, removed, renamed or
/// reordered — the comparator refuses (hard abort) to align traces across
/// schema versions, because cross-version deltas would be fabricated.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/plan.hpp"
#include "workload/request_stream.hpp"

namespace hybrimoe::trace {

/// Schema identifier written into every trace header line.
inline constexpr const char* kSchemaName = "hybrimoe-trace";
/// Schema version; bump on any step/event/header field change.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// One recorded serving step — the in-memory form of a `step` JSONL line,
/// appended by trace::Recorder::after_step.
struct StepRecord {
  std::size_t index = 0;        ///< engine step index (0-based)
  double start_clock = 0.0;     ///< serving clock when the step began
  double end_clock = 0.0;       ///< serving clock after the step's latency
  double latency = 0.0;         ///< modeled step latency (seconds)
  sched::Stage stage = sched::Stage::Prefill;  ///< dominant scheduling regime

  std::size_t prefill_tokens = 0;   ///< prompt tokens processed this step
  std::size_t decode_tokens = 0;    ///< decode tokens emitted this step
  std::size_t active_requests = 0;  ///< batch size when the step ran
  std::size_t waiting_requests = 0;  ///< surfaced, unadmitted when composed
  /// Waiting requests per priority tier (workload::priority_index order).
  std::array<std::size_t, workload::kNumPriorities> waiting_by_tier{};

  /// Expert uploads targeting each accelerator *during this step* (delta of
  /// the engine's cumulative per-device counters).
  std::vector<std::size_t> transfers_to_device;
  /// Bytes moved to each accelerator this step (transfers x per-expert
  /// routed weight bytes; zeros when the recorder has no model binding).
  std::vector<double> transferred_bytes;
  /// Seconds each link spent busy on this step's uploads, at the link's
  /// bandwidth while the step ran (transfers x current per-expert time).
  std::vector<double> link_busy_s;
  /// Device health while the step ran (after before_step's mutations).
  std::vector<std::uint8_t> device_available;
  /// Link bandwidth scale while the step ran.
  std::vector<double> link_scale;

  std::size_t transfers = 0;    ///< on-demand uploads this step (delta)
  std::size_t prefetches = 0;   ///< speculative uploads this step (delta)
  std::size_t maintenance = 0;  ///< maintenance admissions this step (delta)

  std::size_t cache_hits = 0;        ///< lookup hits this step, all devices
  std::size_t cache_misses = 0;      ///< lookup misses this step, all devices
  std::size_t cache_insertions = 0;  ///< cache admissions this step
  std::size_t cache_evictions = 0;   ///< cache evictions this step
  /// Per-device cache counter deltas (topology order).
  std::vector<std::size_t> device_cache_hits;
  std::vector<std::size_t> device_cache_misses;
  std::vector<std::size_t> device_cache_evictions;

  double cpu_busy_s = 0.0;   ///< CPU expert-pool busy time this step
  double gpu_busy_s = 0.0;   ///< accelerator compute busy time this step
  double pcie_busy_s = 0.0;  ///< link busy time this step (all links)

  std::size_t rejected_total = 0;     ///< cumulative admission rejections
  std::size_t preemptions_total = 0;  ///< cumulative deferred prefill steps
  double kv_used_bytes = 0.0;         ///< KV reservation when composed
  double kv_peak_bytes = 0.0;         ///< KV high-water mark so far
  std::size_t kv_evictions_total = 0;  ///< cumulative KV-pressure evictions
};

}  // namespace hybrimoe::trace
