#pragma once

/// \file sink.hpp
/// Where trace lines go. TraceSink is the one-method seam between the
/// Recorder (which formats JSONL lines) and their destination: a stream for
/// `hybrimoe_run --trace FILE`, an in-memory vector for tests. Sinks receive
/// complete lines without the trailing newline and append it themselves, so
/// a sink can also re-route lines (e.g. into a log) without reparsing.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hybrimoe::trace {

/// Destination for formatted trace lines (JSONL, one record per line).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// \brief Consume one complete record line (no trailing newline).
  virtual void write(std::string_view line) = 0;
};

/// Streams every line to an ostream (file or stdout), newline-terminated.
class OstreamSink final : public TraceSink {
 public:
  /// \brief Bind to the output stream (which must outlive the sink).
  explicit OstreamSink(std::ostream& os) : os_(os) {}
  /// \brief Append the line plus a newline.
  void write(std::string_view line) override { os_ << line << '\n'; }

 private:
  std::ostream& os_;
};

/// Collects lines in memory — the test sink.
class VectorSink final : public TraceSink {
 public:
  /// \brief Append the line to the collected vector.
  void write(std::string_view line) override { lines_.emplace_back(line); }
  /// \brief Every line written so far, in order.
  [[nodiscard]] const std::vector<std::string>& lines() const noexcept {
    return lines_;
  }

 private:
  std::vector<std::string> lines_;
};

}  // namespace hybrimoe::trace
