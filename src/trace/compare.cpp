#include "trace/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "trace/schema.hpp"
#include "util/json.hpp"

namespace hybrimoe::trace {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Parser;
using util::json::Value;

/// Append every numeric/boolean leaf of `v` under the dotted/indexed prefix.
void flatten(const Value& v, const std::string& prefix,
             std::vector<Metric>& out) {
  if (std::holds_alternative<double>(v.value)) {
    out.push_back({prefix, std::get<double>(v.value)});
  } else if (std::holds_alternative<bool>(v.value)) {
    out.push_back({prefix, std::get<bool>(v.value) ? 1.0 : 0.0});
  } else if (v.is_object()) {
    for (const auto& [key, child] : std::get<Object>(v.value))
      flatten(child, prefix.empty() ? key : prefix + "." + key, out);
  } else if (v.is_array()) {
    const Array& items = std::get<Array>(v.value);
    for (std::size_t i = 0; i < items.size(); ++i)
      flatten(items[i], prefix + "[" + std::to_string(i) + "]", out);
  }
  // Strings carry identity (stack/model names), not measurements — skipped.
}

/// The string field `key` of a record line, or "" when absent.
std::string_view string_field(const Object& object, std::string_view key) {
  for (const auto& [k, v] : object)
    if (k == key && v.is_string()) return std::get<std::string>(v.value);
  return {};
}

/// The numeric field `key` of a record line, or `fallback` when absent.
double number_field(const Object& object, std::string_view key, double fallback) {
  for (const auto& [k, v] : object)
    if (k == key && std::holds_alternative<double>(v.value))
      return std::get<double>(v.value);
  return fallback;
}

Artifact parse_trace(std::string_view text, const char* label) {
  Artifact artifact;
  artifact.kind = Artifact::Kind::Trace;
  std::unordered_map<std::string, std::size_t> event_counts;
  std::vector<std::string> event_order;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_number;
    if (line.empty()) continue;
    const Value value = Parser(line, label).parse_document();
    const Object& record = std::get<Object>(value.value);
    const std::string_view kind = string_field(record, "kind");
    if (kind == "header") {
      artifact.schema = string_field(record, "schema");
      artifact.version =
          static_cast<std::uint32_t>(number_field(record, "version", 0.0));
      for (const auto& [key, child] : record)
        if (std::holds_alternative<double>(child.value))
          artifact.metrics.push_back(
              {"header." + key, std::get<double>(child.value)});
    } else if (kind == "step") {
      const auto index =
          static_cast<std::size_t>(number_field(record, "index", 0.0));
      const std::string prefix = "step[" + std::to_string(index) + "]";
      for (const auto& [key, child] : record) {
        if (key == "kind" || key == "index") continue;
        flatten(child, prefix + "." + key, artifact.metrics);
      }
    } else if (kind == "event") {
      const std::string type(string_field(record, "type"));
      if (event_counts.emplace(type, 0).second) event_order.push_back(type);
      ++event_counts[type];
    } else if (kind == "summary") {
      for (const auto& [key, child] : record) {
        if (key == "kind") continue;
        flatten(child, "summary." + key, artifact.metrics);
      }
    } else {
      util::json::error(label, value.offset,
                        "trace line " + std::to_string(line_number) +
                            " has unknown kind '" + std::string(kind) + "'");
    }
  }
  for (const std::string& type : event_order)
    artifact.metrics.push_back(
        {"events." + type, static_cast<double>(event_counts[type])});
  return artifact;
}

}  // namespace

const Threshold& Thresholds::lookup(std::string_view metric) const {
  // Leaf name: after the last '.', with any array suffix stripped.
  const std::size_t dot = metric.rfind('.');
  std::string_view leaf =
      dot == std::string_view::npos ? metric : metric.substr(dot + 1);
  const std::size_t bracket = leaf.find('[');
  if (bracket != std::string_view::npos) leaf = leaf.substr(0, bracket);
  for (const auto& [name, rule] : by_metric)
    if (name == leaf) return rule;
  return fallback;
}

Thresholds parse_thresholds(std::string_view text) {
  const Value document = Parser(text, "thresholds").parse_document();
  Thresholds thresholds;
  const auto parse_rule = [](const Value& v, const std::string& key) {
    if (!v.is_object()) util::json::error_at(v, "'" + key + "' must be an object");
    Threshold rule;
    for (const auto& [k, child] : std::get<Object>(v.value)) {
      const double number = util::json::as_number(child, k);
      if (number < 0.0)
        util::json::error_at(child, "'" + k + "' must be non-negative");
      if (k == "abs") {
        rule.abs = number;
      } else if (k == "rel") {
        rule.rel = number;
      } else {
        util::json::error_at(child,
                             "unknown threshold key '" + k + "' (want abs/rel)");
      }
    }
    return rule;
  };
  for (const auto& [key, value] : std::get<Object>(document.value)) {
    if (key == "default") {
      thresholds.fallback = parse_rule(value, key);
    } else if (key == "metrics") {
      if (!value.is_object())
        util::json::error_at(value, "'metrics' must be an object");
      for (const auto& [name, rule] : std::get<Object>(value.value))
        thresholds.by_metric.emplace_back(name, parse_rule(rule, name));
    } else {
      util::json::error_at(value, "unknown thresholds key '" + key +
                                      "' (want default/metrics)");
    }
  }
  return thresholds;
}

Artifact parse_artifact(std::string_view text, const char* label) {
  // A trace is a JSONL stream whose first line is a header record; anything
  // else is treated as one bench/CLI JSON object.
  const std::size_t first_line_end = text.find('\n');
  if (first_line_end != std::string_view::npos) {
    const std::string_view first = text.substr(0, first_line_end);
    if (first.find("\"kind\": \"header\"") != std::string_view::npos)
      return parse_trace(text, label);
  }
  Artifact artifact;
  artifact.kind = Artifact::Kind::Bench;
  const Value document = Parser(text, label).parse_document();
  flatten(document, "", artifact.metrics);
  return artifact;
}

CompareReport compare(const Artifact& baseline, const Artifact& candidate,
                      const Thresholds& thresholds) {
  if (baseline.kind == Artifact::Kind::Trace &&
      candidate.kind == Artifact::Kind::Trace &&
      (baseline.schema != candidate.schema ||
       baseline.version != candidate.version)) {
    // Aligning fields whose meaning changed between schema versions would
    // fabricate deltas — refuse in a way no caller can swallow.
    std::fprintf(stderr,
                 "hybrimoe_compare: trace schema mismatch (%s v%u vs %s v%u) — "
                 "regenerate the baseline with this build\n",
                 baseline.schema.c_str(), baseline.version,
                 candidate.schema.c_str(), candidate.version);
    std::abort();
  }

  std::unordered_map<std::string_view, const Metric*> base_by_name;
  base_by_name.reserve(baseline.metrics.size());
  for (const Metric& m : baseline.metrics) base_by_name.emplace(m.name, &m);

  CompareReport report;
  std::unordered_map<std::string_view, bool> seen;
  seen.reserve(candidate.metrics.size());
  for (const Metric& cand : candidate.metrics) {
    seen.emplace(cand.name, true);
    const auto it = base_by_name.find(cand.name);
    if (it == base_by_name.end()) {
      report.missing.push_back("candidate-only: " + cand.name);
      continue;
    }
    const Metric& base = *it->second;
    const Threshold& rule = thresholds.lookup(cand.name);
    Delta d;
    d.name = cand.name;
    d.baseline = base.value;
    d.candidate = cand.value;
    d.delta = cand.value - base.value;
    d.limit =
        rule.abs + rule.rel * std::max(std::abs(base.value), std::abs(cand.value));
    d.violated = std::abs(d.delta) > d.limit;
    report.violations += d.violated ? 1 : 0;
    report.deltas.push_back(std::move(d));
  }
  for (const Metric& base : baseline.metrics)
    if (!seen.contains(base.name))
      report.missing.push_back("baseline-only: " + base.name);
  return report;
}

}  // namespace hybrimoe::trace
