#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by the metrics collectors and the
/// figure-reproduction benches (CDFs, percentiles, concentration measures).

#include <cstddef>
#include <span>
#include <vector>

namespace hybrimoe::util {

/// Welford-style streaming accumulator: count / mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double total() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile, q in [0,100]. Copies and sorts its input.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Serving-tail shorthands for the latency distributions reported by the
/// serving metrics (p50/p95/p99 TTFT, TBT, E2E). Same contract as
/// percentile(): non-empty input required.
[[nodiscard]] double p50(std::span<const double> values);
[[nodiscard]] double p95(std::span<const double> values);
[[nodiscard]] double p99(std::span<const double> values);

/// Arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Geometric mean of strictly positive values (0 for empty input).
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Gini coefficient of a non-negative distribution; 0 = perfectly even,
/// -> 1 = fully concentrated. Used to compare neuron vs expert activation
/// skew (paper Fig. 3a).
[[nodiscard]] double gini(std::span<const double> values);

/// Cumulative distribution of "share of total mass captured by the top x% of
/// items", evaluated at each item boundary after sorting descending —
/// exactly the curve plotted in the paper's Fig. 3(a).
///
/// Result has values.size() points; point i is the fraction of total mass
/// held by the (i+1) largest items.
[[nodiscard]] std::vector<double> concentration_cdf(std::span<const double> values);

/// Pearson correlation of two equal-length series (0 if degenerate).
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace hybrimoe::util
