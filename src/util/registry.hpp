#pragma once

/// \file registry.hpp
/// Generic string-keyed registry used by the runtime configuration layer
/// (runtime/stack_registry.hpp): component factories self-register under a
/// name, and lookups of unknown names fail with a did-you-mean error that
/// lists every registered name. Header-only and deliberately tiny — a
/// std::map with opinionated error messages, not a plugin system.
///
/// Lifetime: registries are function-local statics owned by their accessor
/// (constructed on first use, alive for the rest of the process). Entries
/// are never removed; re-registering a taken name throws, so a typo in a
/// registration site fails loudly at startup instead of shadowing a
/// component.

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::util {

/// Levenshtein edit distance — the scorer behind did-you-mean suggestions.
[[nodiscard]] inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];  // d[i-1][j-1]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t above = row[j];  // d[i-1][j]
      const std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, above + 1, substitute});
      diagonal = above;
    }
  }
  return row[b.size()];
}

/// Closest candidate to `key`, or empty when nothing is close enough to be a
/// plausible typo (distance must stay within roughly a third of the key).
[[nodiscard]] inline std::string closest_name(std::string_view key,
                                              const std::vector<std::string>& names) {
  std::string best;
  std::size_t best_distance = std::max<std::size_t>(2, key.size() / 3) + 1;
  for (const std::string& name : names) {
    const std::size_t d = edit_distance(key, name);
    if (d < best_distance) {
      best_distance = d;
      best = name;
    }
  }
  return best;
}

/// "unknown scheduler 'hybird' — did you mean 'hybrid'? (registered: ...)"
[[nodiscard]] inline std::string unknown_name_message(
    std::string_view family, std::string_view key,
    const std::vector<std::string>& names) {
  std::ostringstream os;
  os << "unknown " << family << " '" << key << "'";
  const std::string suggestion = closest_name(key, names);
  if (!suggestion.empty()) os << " — did you mean '" << suggestion << "'?";
  os << " (registered: ";
  for (std::size_t i = 0; i < names.size(); ++i)
    os << (i ? ", " : "") << "'" << names[i] << "'";
  os << ")";
  return os.str();
}

/// String-keyed registry of one component family. `Value` is typically a
/// factory (std::function) but any copyable value works — the Framework
/// preset registry stores plain enum values.
template <typename Value>
class Registry {
 public:
  /// `family` names the component kind in error messages ("scheduler",
  /// "cache policy", ...).
  explicit Registry(std::string family) : family_(std::move(family)) {}

  /// Register `value` under `name`. Throws std::invalid_argument on an empty
  /// or already-taken name — duplicate registrations are always a bug.
  void add(std::string name, Value value) {
    HYBRIMOE_REQUIRE(!name.empty(), family_ + " name must be non-empty");
    const auto [it, inserted] = entries_.emplace(std::move(name), std::move(value));
    HYBRIMOE_REQUIRE(inserted, family_ + " '" + it->first + "' is already registered");
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return entries_.find(name) != entries_.end();
  }

  /// Look up `name`; unknown names throw std::invalid_argument with a
  /// did-you-mean suggestion and the full registered-name list.
  [[nodiscard]] const Value& get(std::string_view name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end())
      throw std::invalid_argument(unknown_name_message(family_, name, names()));
    return it->second;
  }

  /// Every registered name, sorted (map order).
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, value] : entries_) out.push_back(name);
    return out;
  }

  [[nodiscard]] const std::string& family() const noexcept { return family_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::string family_;
  std::map<std::string, Value, std::less<>> entries_;  ///< heterogeneous lookup
};

}  // namespace hybrimoe::util
