#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace hybrimoe::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  HYBRIMOE_REQUIRE(!values.empty(), "percentile of empty span");
  HYBRIMOE_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double p50(std::span<const double> values) { return percentile(values, 50.0); }

double p95(std::span<const double> values) { return percentile(values, 95.0); }

double p99(std::span<const double> values) { return percentile(values, 99.0); }

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    HYBRIMOE_REQUIRE(v > 0.0, "geometric_mean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double gini(std::span<const double> values) {
  HYBRIMOE_REQUIRE(!values.empty(), "gini of empty span");
  std::vector<double> sorted(values.begin(), values.end());
  for (const double v : sorted) HYBRIMOE_REQUIRE(v >= 0.0, "gini requires non-negative values");
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return weighted / (n * total);
}

std::vector<double> concentration_cdf(std::span<const double> values) {
  HYBRIMOE_REQUIRE(!values.empty(), "concentration_cdf of empty span");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  std::vector<double> cdf(sorted.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc += sorted[i];
    cdf[i] = total > 0.0 ? acc / total : 0.0;
  }
  return cdf;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HYBRIMOE_REQUIRE(xs.size() == ys.size(), "pearson requires equal-length series");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace hybrimoe::util
