#pragma once

/// \file table.hpp
/// ASCII table / CSV emission for the benchmark harnesses. Every figure and
/// table of the paper is regenerated as one of these tables so the output can
/// be eyeballed against the paper and diffed across runs.

#include <iosfwd>
#include <string>
#include <vector>

namespace hybrimoe::util {

/// Column-aligned text table with an optional title.
///
/// Cells are stored as strings; numeric helpers format with a fixed precision
/// so repeated runs produce byte-identical output (determinism matters for
/// the reproduction harness).
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  TextTable& set_headers(std::vector<std::string> headers);

  /// Begin a new row; subsequent add_cell calls append to it.
  TextTable& begin_row();
  TextTable& add_cell(std::string value);
  TextTable& add_cell(double value, int precision = 3);
  TextTable& add_cell(std::size_t value);

  /// Convenience: full row at once.
  TextTable& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing separators.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated rendering (headers first) for machine consumption.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (shared by TextTable and ad-hoc prints).
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// Render `value` seconds with an auto-selected unit (s / ms / us / ns).
[[nodiscard]] std::string format_seconds(double value);

/// Render a ratio as e.g. "1.33x".
[[nodiscard]] std::string format_speedup(double value);

}  // namespace hybrimoe::util
