#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hybrimoe::util {

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  HYBRIMOE_REQUIRE(!weights.empty(), "categorical requires at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    HYBRIMOE_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  HYBRIMOE_REQUIRE(total > 0.0, "categorical requires a positive total weight");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric tail: return the last positive bucket
}

}  // namespace hybrimoe::util
