#pragma once

/// \file json_writer.hpp
/// The one JSON emission path shared by every machine-readable artifact the
/// project writes: bench JSON files, `hybrimoe_run --json` summaries and the
/// trace subsystem's JSONL records all go through these two writers, so
/// escaping and float formatting cannot drift between them.
///
/// Two layouts, matching the repo's artifact conventions exactly:
///  * JsonWriter — a pretty root object (one field per line at two-space
///    indent) whose array fields hold one compact element per line at
///    four-space indent. This is the bench/CLI artifact shape the golden
///    regression tests byte-diff.
///  * JsonWriter::Inline — a single-line compact object ({"k": v, ...}),
///    used for array elements and for trace JSONL lines.
///
/// Number formatting is part of the contract:
///  * number() streams with the caller's (default) ostream precision — six
///    significant digits, the historical bench/CLI format the committed
///    golden artifacts encode;
///  * exact() prints util::json::format_number's shortest round-trip form,
///    so trace records parse back to the exact double that was measured.

#include <ostream>
#include <string_view>
#include <type_traits>

#include "util/json.hpp"

namespace hybrimoe::util {

/// Streaming writer for the pretty artifact layout. Construction opens the
/// root object; field() starts each root field; finish() closes the object
/// with a trailing newline. The caller supplies values through the typed
/// emitters (string/number/exact/boolean/raw) after each field() call.
class JsonWriter {
 public:
  /// Compact single-line object writer: {"k": v, "k2": v2}. Construction
  /// opens the object, close() (required) ends it. Also usable standalone
  /// for trace JSONL lines.
  class Inline {
   public:
    /// \brief Open a compact object on `os` (which must outlive the writer).
    explicit Inline(std::ostream& os) : os_(os) { os_ << '{'; }

    /// \brief Start the next field; ", " separates consecutive fields.
    Inline& field(std::string_view key) {
      os_ << (first_ ? "\"" : ", \"") << key << "\": ";
      first_ = false;
      return *this;
    }
    /// \brief Quoted + escaped string value.
    Inline& string(std::string_view s) {
      os_ << json::quote(s);
      return *this;
    }
    /// \brief Double with the stream's (default six-digit) formatting.
    Inline& number(double v) {
      os_ << v;
      return *this;
    }
    /// \brief Integer value (any integral type, bool excluded).
    template <class T,
              std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                               int> = 0>
    Inline& number(T v) {
      if constexpr (std::is_signed_v<T>)
        os_ << static_cast<long long>(v);
      else
        os_ << static_cast<unsigned long long>(v);
      return *this;
    }
    /// \brief Double in shortest exact round-trip form.
    Inline& exact(double v) {
      os_ << json::format_number(v);
      return *this;
    }
    /// \brief true / false.
    Inline& boolean(bool b) {
      os_ << (b ? "true" : "false");
      return *this;
    }
    /// \brief Pre-serialized JSON, embedded verbatim.
    Inline& raw(std::string_view text) {
      os_ << text;
      return *this;
    }
    /// \brief Flat array of integers: [1, 0, 2].
    template <class Range>
    Inline& count_list(const Range& values) {
      os_ << '[';
      bool first = true;
      for (const auto& v : values) {
        os_ << (first ? "" : ", ") << static_cast<unsigned long long>(v);
        first = false;
      }
      os_ << ']';
      return *this;
    }
    /// \brief Flat array of doubles in exact round-trip form.
    template <class Range>
    Inline& exact_list(const Range& values) {
      os_ << '[';
      bool first = true;
      for (const auto& v : values) {
        os_ << (first ? "" : ", ") << json::format_number(static_cast<double>(v));
        first = false;
      }
      os_ << ']';
      return *this;
    }
    /// \brief Close the object. Must be called exactly once.
    void close() { os_ << '}'; }

   private:
    std::ostream& os_;
    bool first_ = true;
  };

  /// \brief Open the root object on `os` (which must outlive the writer).
  explicit JsonWriter(std::ostream& os) : os_(os) { os_ << '{'; }

  /// \brief Start the next root field on its own two-space-indented line.
  JsonWriter& field(std::string_view key) {
    os_ << (first_ ? "\n  \"" : ",\n  \"") << key << "\": ";
    first_ = false;
    return *this;
  }
  /// \brief Quoted + escaped string value.
  void string(std::string_view s) { os_ << json::quote(s); }
  /// \brief Double with the stream's (default six-digit) formatting.
  void number(double v) { os_ << v; }
  /// \brief Integer value (any integral type, bool excluded).
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void number(T v) {
    if constexpr (std::is_signed_v<T>)
      os_ << static_cast<long long>(v);
    else
      os_ << static_cast<unsigned long long>(v);
  }
  /// \brief Double in shortest exact round-trip form.
  void exact(double v) { os_ << json::format_number(v); }
  /// \brief true / false.
  void boolean(bool b) { os_ << (b ? "true" : "false"); }
  /// \brief Pre-serialized JSON, embedded verbatim (e.g. a spec's to_json).
  void raw(std::string_view text) { os_ << text; }

  /// \brief Open an array value; fill it with row() elements.
  void begin_array() {
    os_ << '[';
    rows_ = 0;
  }
  /// \brief Start the next four-space-indented array element and return a
  /// compact object writer for it (close() it before the next row).
  Inline row() {
    os_ << (rows_++ == 0 ? "\n    " : ",\n    ");
    return Inline(os_);
  }
  /// \brief Close the array; further root field() calls may follow.
  void end_array() { os_ << "\n  ]"; }

  /// \brief Close the root object with a trailing newline.
  void finish() { os_ << "\n}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
  std::size_t rows_ = 0;
};

}  // namespace hybrimoe::util
