#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// All stochastic behaviour in the library flows through Rng so that traces,
/// tests and benchmark tables are reproducible run-to-run. The generator is
/// xoshiro256++ seeded via splitmix64, which is fast, high quality and has a
/// trivially portable implementation (no <random> engine-state divergence
/// across standard libraries).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::util {

/// xoshiro256++ pseudo random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  /// Re-initialise the full state from a single 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;  // splitmix64
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t bound) {
    HYBRIMOE_REQUIRE(bound > 0, "uniform_index bound must be positive");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HYBRIMOE_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Standard normal via Box-Muller (caches the second variate).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal with explicit mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// true with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Sample an index proportionally to non-negative weights (at least one > 0).
  [[nodiscard]] std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// A new generator whose stream is independent of this one.
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)() ^ 0xA5A5A5A55A5A5A5AULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace hybrimoe::util
