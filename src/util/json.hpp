#pragma once

/// \file json.hpp
/// The hand-rolled JSON subset shared by the declarative spec grammars
/// (runtime::StackSpec, scenario::ScenarioSpec) and the trace comparator:
/// objects, arrays, strings, numbers and booleans — no null, no dependency.
/// Every unsupported
/// construct fails with a position-stamped error ("<context> error at offset
/// N: ...") instead of parsing loosely, and every Value remembers where it
/// started so key-level errors point at the offending source text.
///
/// The emission half (format_number, FieldWriter, quote) guarantees exact
/// round trips: format_number prints the shortest decimal form that parses
/// back to the same double, so parse(to_json(x)) == x for every valid spec.

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/assert.hpp"

namespace hybrimoe::util::json {

/// Raise a position-stamped std::invalid_argument: "<context> error at
/// offset <offset>: <message>".
[[noreturn]] inline void error(const char* context, std::size_t offset,
                               const std::string& message) {
  std::ostringstream os;
  os << context << " error at offset " << offset << ": " << message;
  throw std::invalid_argument(os.str());
}

struct Value;
/// Insertion-ordered so error messages point at the offending source key.
using Object = std::vector<std::pair<std::string, Value>>;
/// Element-ordered, as written in the source text.
using Array = std::vector<Value>;

/// One parsed JSON value with its source position and the parsing context
/// (the grammar name used in error messages).
struct Value {
  std::variant<std::string, double, bool, Object, Array> value;
  std::size_t offset = 0;      ///< where this value started, for error messages
  const char* context = "spec";  ///< grammar name for error(), set by Parser

  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value);
  }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value); }
};

/// Raise at a value's own position, in its own context.
[[noreturn]] inline void error_at(const Value& v, const std::string& message) {
  error(v.context, v.offset, message);
}

/// Recursive-descent parser over the subset. `context` names the grammar in
/// every error ("stack spec", "scenario spec", ...).
class Parser {
 public:
  /// Bind the parser to its input text and error context.
  Parser(std::string_view text, const char* context)
      : text_(text), context_(context) {}

  /// Parse the whole input as one object; trailing characters are an error.
  [[nodiscard]] Value parse_document() {
    skip_whitespace();
    if (at_end() || peek() != '{')
      fail(pos_, std::string("a ") + context_ +
                     " must be a JSON object starting with '{'");
    Value value = parse_value();
    skip_whitespace();
    if (!at_end()) fail(pos_, std::string("trailing characters after the ") +
                                  context_ + " object");
    return value;
  }

 private:
  [[noreturn]] void fail(std::size_t offset, const std::string& message) const {
    error(context_, offset, message);
  }
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end() &&
           (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos_;
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c) fail(pos_, std::string("expected ") + what);
    ++pos_;
  }

  [[nodiscard]] Value parse_value() {
    skip_whitespace();
    if (at_end()) fail(pos_, "unexpected end of input");
    const std::size_t start = pos_;
    const char c = peek();
    if (c == '{') return {parse_object(), start, context_};
    if (c == '[') return {parse_array(), start, context_};
    if (c == '"') return {parse_string(), start, context_};
    if (c == 't' || c == 'f') return {parse_bool(), start, context_};
    if (c == '-' || (c >= '0' && c <= '9')) return {parse_number(), start, context_};
    fail(pos_, std::string("unexpected character '") + c +
                   "' (expected an object, array, string, number or boolean)");
  }

  [[nodiscard]] Array parse_array() {
    expect('[', "'['");
    Array array;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail(pos_, "unterminated array (missing ']')");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "',' or ']'");
      return array;
    }
  }

  [[nodiscard]] Object parse_object() {
    expect('{', "'{'");
    Object object;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      const std::size_t key_offset = pos_;
      if (at_end() || peek() != '"') fail(pos_, "expected a quoted key");
      std::string key = parse_string();
      for (const auto& [existing, value] : object)
        if (existing == key) fail(key_offset, "duplicate key '" + key + "'");
      skip_whitespace();
      expect(':', "':' after key");
      object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) fail(pos_, "unterminated object (missing '}')");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}'");
      return object;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (at_end()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) fail(pos_, "unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\' || e == '/') {
          out.push_back(e);
        } else {
          fail(pos_ - 1, std::string("unsupported escape '\\") + e + "'");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  [[nodiscard]] bool parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail(pos_, "expected 'true' or 'false'");
  }

  [[nodiscard]] double parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
      return pos_ > before;
    };
    if (!digits()) fail(pos_, "malformed number");
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (!digits()) fail(pos_, "malformed number (digits required after '.')");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) fail(pos_, "malformed exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  std::string_view text_;
  const char* context_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Typed accessors: each raises at the value's position in its context.
// ---------------------------------------------------------------------------

/// The value as a string; raises "'<key>' must be a string" otherwise.
[[nodiscard]] inline const std::string& as_string(const Value& v,
                                                  const std::string& key) {
  if (!v.is_string()) error_at(v, "'" + key + "' must be a string");
  return std::get<std::string>(v.value);
}

/// The value as a number; raises "'<key>' must be a number" otherwise.
[[nodiscard]] inline double as_number(const Value& v, const std::string& key) {
  if (!std::holds_alternative<double>(v.value))
    error_at(v, "'" + key + "' must be a number");
  return std::get<double>(v.value);
}

/// The value as a boolean; raises "'<key>' must be true or false" otherwise.
[[nodiscard]] inline bool as_bool(const Value& v, const std::string& key) {
  if (!std::holds_alternative<bool>(v.value))
    error_at(v, "'" + key + "' must be true or false");
  return std::get<bool>(v.value);
}

/// The value as an array; raises "'<key>' must be an array" otherwise.
[[nodiscard]] inline const Array& as_array(const Value& v, const std::string& key) {
  if (!v.is_array()) error_at(v, "'" + key + "' must be an array");
  return std::get<Array>(v.value);
}

/// The value as a non-negative integer count.
[[nodiscard]] inline std::size_t as_count(const Value& v, const std::string& key) {
  const double d = as_number(v, key);
  if (d < 0.0 || d != std::floor(d) || d > 9e15)
    error_at(v, "'" + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

/// Quote + escape a string for the subset ("\\" and "\"").
[[nodiscard]] inline std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Shortest decimal form that parses back to the same double, so the JSON
/// round trip is exact without printing 17 digits for 0.25 (and integral
/// values like 120 stay "120", not "1.2e+02").
[[nodiscard]] inline std::string format_number(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << std::setprecision(15) << std::fixed << v;
    std::string s = os.str();
    s.erase(s.find('.'));  // integral: drop the fractional zeros
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  HYBRIMOE_ASSERT(false, "a double must round-trip at 17 significant digits");
}

/// Appends ", \"key\": " (first field omits the comma).
class FieldWriter {
 public:
  /// Bind the writer to the output stream (which outlives it).
  explicit FieldWriter(std::ostringstream& os) : os_(os) {}
  /// Start the next field and return the stream for its value.
  std::ostringstream& field(const char* key) {
    if (!first_) os_ << ", ";
    first_ = false;
    os_ << '"' << key << "\": ";
    return os_;
  }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

}  // namespace hybrimoe::util::json
