#pragma once

/// \file assert.hpp
/// Lightweight contract checking used across the library.
///
/// Two categories, per the C++ Core Guidelines (I.5/I.6):
///  * HYBRIMOE_REQUIRE  — precondition on a public API; violations throw
///    std::invalid_argument so callers can recover or surface the misuse.
///  * HYBRIMOE_ASSERT   — internal invariant; violations throw
///    std::logic_error because continuing would produce garbage results.

#include <sstream>
#include <stdexcept>
#include <string>

namespace hybrimoe::util {

[[noreturn]] inline void raise_precondition(const char* expr, const char* file, int line,
                                            const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void raise_invariant(const char* expr, const char* file, int line,
                                         const std::string& message) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace hybrimoe::util

#define HYBRIMOE_REQUIRE(expr, msg)                                             \
  do {                                                                          \
    if (!(expr)) ::hybrimoe::util::raise_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define HYBRIMOE_ASSERT(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::hybrimoe::util::raise_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
