#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace hybrimoe::util {

TextTable& TextTable::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

TextTable& TextTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add_cell(std::string value) {
  HYBRIMOE_REQUIRE(!rows_.empty(), "add_cell before begin_row");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

TextTable& TextTable::add_cell(std::size_t value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!headers_.empty()) {
    emit(headers_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  if (!headers_.empty()) emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_seconds(double value) {
  const double magnitude = value < 0 ? -value : value;
  if (magnitude >= 1.0) return format_double(value, 3) + " s";
  if (magnitude >= 1e-3) return format_double(value * 1e3, 3) + " ms";
  if (magnitude >= 1e-6) return format_double(value * 1e6, 2) + " us";
  return format_double(value * 1e9, 1) + " ns";
}

std::string format_speedup(double value) { return format_double(value, 2) + "x"; }

}  // namespace hybrimoe::util
